//! Running statistics: Welford moments and exponentially weighted averages.
//!
//! Used by the cost-calibration harness to summarise per-operation timings
//! without storing samples.

/// Incrementally computed count / mean / variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` when no observation was recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance, or `None` with fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Build with smoothing factor `alpha ∈ (0, 1]`; larger tracks faster.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Incorporate one observation, returning the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(next);
        next
    }

    /// The current average, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_moments_report_none() {
        let m = OnlineMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), None);
        assert_eq!(m.variance(), None);
        assert_eq!(m.std_dev(), None);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
    }

    #[test]
    fn moments_match_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = OnlineMoments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean().unwrap() - 5.0).abs() < 1e-12);
        // Sample variance of that classic dataset is 32/7.
        assert!((m.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn single_observation_has_mean_but_no_variance() {
        let mut m = OnlineMoments::new();
        m.push(3.5);
        assert_eq!(m.mean(), Some(3.5));
        assert_eq!(m.variance(), None);
    }

    #[test]
    fn ewma_starts_at_first_observation_and_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.update(0.0), 5.0);
        for _ in 0..60 {
            e.update(4.0);
        }
        assert!((e.value().unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(e.alpha(), 0.5);
    }

    #[test]
    fn ewma_with_alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        assert_eq!(e.update(42.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }
}
