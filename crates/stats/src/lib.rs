//! # linkage-stats
//!
//! The statistical machinery behind the adaptive controller.
//!
//! The paper's monitor models the observed join result size after `n` steps
//! as a binomial random variable `O_n ~ bin(n, p(n))` with `p(n) = n / |R|`
//! (§3.2), and the assessor flags a completeness problem when the observation
//! is an outlier of that distribution:
//!
//! ```text
//! σ(n)  ≡  P_{n,p(n)}(O ≤ Ō_n)  ≤  θ_out
//! ```
//!
//! This crate provides:
//!
//! * [`Binomial`] — exact pmf/cdf (log-space direct summation and a
//!   regularised-incomplete-beta formulation) plus a normal approximation,
//!   cross-checked against each other by property tests;
//! * [`BinomialOutlierDetector`] — the `σ` predicate itself;
//! * [`SlidingWindow`] / [`CountingWindow`] — the fixed-width window of
//!   recent observations used by the `μ_i` predicates;
//! * [`OnlineMoments`] / [`Ewma`] — running statistics used by the cost
//!   calibration harness;
//! * [`Histogram`] — fixed-bin histograms for experiment reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod gamma;
pub mod histogram;
pub mod online;
pub mod outlier;
pub mod window;

pub use binomial::{Binomial, CdfMethod};
pub use gamma::{ln_binomial_coefficient, ln_factorial, ln_gamma, regularized_incomplete_beta};
pub use histogram::Histogram;
pub use online::{Ewma, OnlineMoments};
pub use outlier::{BinomialOutlierDetector, OutlierVerdict};
pub use window::{CountingWindow, SlidingWindow};
