//! Log-gamma, log-factorials and the regularised incomplete beta function.
//!
//! These are the numeric primitives behind the exact binomial CDF.  They are
//! implemented from scratch (Lanczos approximation + Numerical-Recipes-style
//! continued fraction) so the workspace has no dependency on a numerical
//! crate; property tests cross-check them against direct summations.

/// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
// The published coefficients carry more digits than f64 holds; keep them
// verbatim so the table matches the literature.
#[allow(clippy::excessive_precision)]
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x.is_finite(),
        "ln_gamma requires a finite argument, got {x}"
    );
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        assert!(
            sin_pi_x != 0.0,
            "ln_gamma is undefined at non-positive integers (x = {x})"
        );
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` computed through [`ln_gamma`].
pub fn ln_factorial(n: u64) -> f64 {
    // Small values straight from an exact table to avoid any rounding noise
    // in the hottest calls (binomial pmf with small n).
    const TABLE: [f64; 11] = [
        0.0, 0.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0, 40320.0, 362880.0, 3628800.0,
    ];
    if (n as usize) < TABLE.len() {
        return TABLE[n as usize].max(1.0).ln();
    }
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`, the natural log of the binomial coefficient.
pub fn ln_binomial_coefficient(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The regularised incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`, evaluated with the Lentz continued-fraction algorithm.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "I_x(a, b) requires a, b > 0 (a={a}, b={b})"
    );
    assert!(
        (0.0..=1.0).contains(&x),
        "I_x(a, b) requires x in [0, 1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }

    // ln of the prefactor  x^a (1−x)^b / (a B(a, b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();

    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_continued_fraction(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - (ln_front.exp() * beta_continued_fraction(b, a, 1.0 - x) / b)).clamp(0.0, 1.0)
    }
}

/// Lentz's method for the continued fraction of the incomplete beta function.
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;

    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;

    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;

        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;

        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;

        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(0.5) = √π.
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(3.0), std::f64::consts::LN_2, 1e-12));
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
        // Γ(10) = 9! = 362880.
        assert!(close(ln_gamma(10.0), 362880f64.ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_reflection_branch() {
        // Γ(0.25) ≈ 3.625609908.
        assert!(close(ln_gamma(0.25), 3.625_609_908_22f64.ln(), 1e-9));
        // Γ(0.1) ≈ 9.513507698.
        assert!(close(ln_gamma(0.1), 9.513_507_698_67f64.ln(), 1e-9));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn ln_gamma_rejects_nan() {
        ln_gamma(f64::NAN);
    }

    #[test]
    fn ln_factorial_matches_direct_products() {
        let mut acc = 1.0f64;
        for n in 1..=170u64 {
            acc *= n as f64;
            assert!(
                close(ln_factorial(n), acc.ln(), 1e-10),
                "n = {n}: {} vs {}",
                ln_factorial(n),
                acc.ln()
            );
        }
        assert_eq!(ln_factorial(0), 0.0);
    }

    #[test]
    fn ln_binomial_coefficient_matches_pascal() {
        // C(10, 3) = 120, C(52, 5) = 2598960.
        assert!(close(ln_binomial_coefficient(10, 3), 120f64.ln(), 1e-10));
        assert!(close(
            ln_binomial_coefficient(52, 5),
            2_598_960f64.ln(),
            1e-10
        ));
        assert_eq!(ln_binomial_coefficient(5, 9), f64::NEG_INFINITY);
        assert!(close(ln_binomial_coefficient(7, 0), 0.0, 1e-12));
        assert!(close(ln_binomial_coefficient(7, 7), 0.0, 1e-12));
    }

    #[test]
    fn incomplete_beta_boundary_values() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_uniform_case_is_identity() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!(close(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12));
        }
    }

    #[test]
    fn incomplete_beta_known_values() {
        // I_x(a, 1) = x^a ; I_x(1, b) = 1 − (1−x)^b.
        for x in [0.2, 0.5, 0.8] {
            assert!(close(
                regularized_incomplete_beta(3.0, 1.0, x),
                x.powi(3),
                1e-10
            ));
            assert!(close(
                regularized_incomplete_beta(1.0, 4.0, x),
                1.0 - (1.0 - x).powi(4),
                1e-10
            ));
        }
        // Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a).
        let v = regularized_incomplete_beta(2.5, 4.5, 0.3);
        let w = 1.0 - regularized_incomplete_beta(4.5, 2.5, 0.7);
        assert!(close(v, w, 1e-10));
    }

    #[test]
    #[should_panic(expected = "requires a, b > 0")]
    fn incomplete_beta_rejects_nonpositive_parameters() {
        regularized_incomplete_beta(0.0, 1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn incomplete_beta_rejects_out_of_range_x() {
        regularized_incomplete_beta(1.0, 1.0, 1.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ln_gamma_satisfies_recurrence(x in 0.5f64..50.0) {
            // Γ(x+1) = x Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x).
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
        }

        #[test]
        fn incomplete_beta_is_monotone_in_x(a in 0.5f64..20.0, b in 0.5f64..20.0,
                                            x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            let vlo = regularized_incomplete_beta(a, b, lo);
            let vhi = regularized_incomplete_beta(a, b, hi);
            prop_assert!(vlo <= vhi + 1e-12);
            prop_assert!((0.0..=1.0).contains(&vlo));
            prop_assert!((0.0..=1.0).contains(&vhi));
        }

        #[test]
        fn incomplete_beta_symmetry(a in 0.5f64..20.0, b in 0.5f64..20.0, x in 0.0f64..1.0) {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }
    }
}
