//! Fixed-bin histograms for experiment reports.

use std::fmt;

/// A histogram over `[lo, hi)` with equally wide bins, plus underflow and
/// overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Build a histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty ({lo}..{hi})");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.bin_width()) as usize;
            // Floating point can land exactly on the upper edge.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The half-open value range `[lo, hi)` of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = self.bin_width();
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar = "#".repeat((count * 40 / peak) as usize);
            writeln!(f, "[{lo:>10.3}, {hi:>10.3})  {count:>8}  {bar}")?;
        }
        if self.underflow > 0 || self.overflow > 0 {
            writeln!(
                f,
                "underflow: {}  overflow: {}",
                self.underflow, self.overflow
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.999] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.bin_range(1), (2.0, 4.0));
    }

    #[test]
    fn out_of_range_goes_to_under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.5);
        h.record(1.0); // upper bound is exclusive
        h.record(7.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[0, 0]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn display_renders_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        h.record(1.5);
        h.record(1.6);
        let s = h.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        Histogram::new(1.0, 1.0, 3);
    }
}
