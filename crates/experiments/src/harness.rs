//! The single-run experiment harness, built on the `linkage::api` facade.
//!
//! Every join mode — the exact-only baseline, the approximate-from-start
//! join, the serial adaptive pipeline and the sharded parallel pipeline —
//! is one declaration against [`Pipeline::builder`] differing only in its
//! switch policy and execution mode; no per-layer config is constructed
//! here.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use linkage::api::{Pipeline, PipelineBuilder, RunOutcome};
use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_text::QGramConfig;
use linkage_types::{defaults, RecordId, Result};

/// Which join to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMode {
    /// Exact symmetric hash join only (the non-adaptive baseline).
    ExactOnly,
    /// Approximate SSH join from the first tuple.
    ApproxOnly,
    /// Exact join with the adaptive switch (the paper's system).
    Adaptive,
    /// The adaptive join sharded across worker threads by the parallel
    /// execution layer, with the global switch.
    Parallel {
        /// Number of worker shards.
        shards: usize,
    },
}

impl JoinMode {
    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            JoinMode::ExactOnly => "exact-only",
            JoinMode::ApproxOnly => "approx-only",
            JoinMode::Adaptive => "adaptive",
            JoinMode::Parallel { .. } => "parallel",
        }
    }
}

/// One experiment: a workload plus a join configuration.
///
/// `#[non_exhaustive]`: construct via [`ExperimentConfig::adaptive`] (or
/// [`Default`]) and adjust the public fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ExperimentConfig {
    /// The generated workload.
    pub data: DatagenConfig,
    /// Which join to run.
    pub mode: JoinMode,
    /// Similarity threshold `θ_sim`.
    pub theta_sim: f64,
    /// Outlier threshold `θ_out` (adaptive mode).
    pub theta_out: f64,
    /// Monitor cadence in consumed child tuples (adaptive mode).
    pub check_every: u64,
    /// Q-gram configuration for the approximate phase.
    pub qgram: QGramConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::adaptive(500, 42)
    }
}

impl ExperimentConfig {
    /// The default adaptive experiment over a mid-stream-dirt workload.
    pub fn adaptive(parents: usize, seed: u64) -> Self {
        Self {
            data: DatagenConfig::mid_stream_dirty(parents, seed),
            mode: JoinMode::Adaptive,
            theta_sim: defaults::THETA_SIM,
            theta_out: defaults::THETA_OUT,
            check_every: defaults::CHECK_EVERY,
            qgram: QGramConfig::default(),
        }
    }

    /// Same workload, different mode.
    #[must_use]
    pub fn with_mode(mut self, mode: JoinMode) -> Self {
        self.mode = mode;
        self
    }

    /// The pipeline declaration this experiment induces over `data`.
    fn pipeline(&self, data: &GeneratedData) -> PipelineBuilder {
        let builder = Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
            .qgram(self.qgram.clone())
            .theta_sim(self.theta_sim)
            .theta_out(self.theta_out)
            .check_every(self.check_every);
        match self.mode {
            JoinMode::ExactOnly => builder.never_switch(),
            JoinMode::ApproxOnly => builder.approximate_from_start(),
            JoinMode::Adaptive => builder.serial(),
            JoinMode::Parallel { shards } => builder.sharded(shards),
        }
    }
}

/// The measured outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Distinct pairs emitted.
    pub pairs: usize,
    /// Pairs emitted with identical keys.
    pub exact_pairs: usize,
    /// Pairs emitted by similarity.
    pub approx_pairs: usize,
    /// Pairs that are correct according to ground truth.
    pub correct: usize,
    /// Size of the ground truth.
    pub true_matches: usize,
    /// `correct / true_matches`.
    pub recall: f64,
    /// `correct / pairs` (1.0 when no pairs were emitted).
    pub precision: f64,
    /// Input tuples consumed when the switch fired, if it did.
    pub switched_after: Option<u64>,
    /// Matches recovered from resident state during the switch.
    pub recovered: u64,
    /// Wall-clock time of the join (excludes data generation).
    pub elapsed: Duration,
}

impl ExperimentResult {
    /// One aligned report row; pair with [`header`].
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:<14} {pairs:>7} {exact:>7} {approx:>7} {recall:>7.3} {precision:>9.3} {switch:>8} {ms:>9.1}",
            pairs = self.pairs,
            exact = self.exact_pairs,
            approx = self.approx_pairs,
            recall = self.recall,
            precision = self.precision,
            switch = self
                .switched_after
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            ms = self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// The header matching [`ExperimentResult::row`].
pub fn header() -> String {
    format!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9} {:>8} {:>9}",
        "mode", "pairs", "exact", "approx", "recall", "precision", "switch", "ms"
    )
}

fn score(outcome: &RunOutcome, data: &GeneratedData, elapsed: Duration) -> ExperimentResult {
    let truth: HashSet<(RecordId, RecordId)> = data.truth.iter().copied().collect();
    let pairs = &outcome.matches;
    // An approximate-from-start run records a pro-forma switch at tuple 0;
    // report it like the old bare SSH baseline did: no mid-stream switch.
    let switch = outcome.report.switch.filter(|e| e.after_tuples > 0);
    let exact_pairs = pairs.iter().filter(|p| p.kind.is_exact()).count();
    let correct = pairs
        .iter()
        .filter(|p| truth.contains(&p.id_pair()))
        .count();
    let recall = if truth.is_empty() {
        1.0
    } else {
        correct as f64 / truth.len() as f64
    };
    let precision = if pairs.is_empty() {
        1.0
    } else {
        correct as f64 / pairs.len() as f64
    };
    ExperimentResult {
        pairs: pairs.len(),
        exact_pairs,
        approx_pairs: pairs.len() - exact_pairs,
        correct,
        true_matches: truth.len(),
        recall,
        precision,
        switched_after: switch.map(|e| e.after_tuples),
        recovered: switch.map(|e| e.recovered).unwrap_or(0),
        elapsed,
    }
}

/// Generate the workload and run the configured join over it.
pub fn run(config: &ExperimentConfig) -> Result<ExperimentResult> {
    let data = generate(&config.data)?;
    let pipeline = config.pipeline(&data).build()?;
    let start = Instant::now();
    let outcome = pipeline.collect()?;
    let elapsed = start.elapsed();
    Ok(score(&outcome, &data, elapsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_exact_only_on_dirty_data() {
        let base = ExperimentConfig::adaptive(120, 11);
        let exact = run(&base.clone().with_mode(JoinMode::ExactOnly)).unwrap();
        let adaptive = run(&base).unwrap();
        assert!(adaptive.recall > exact.recall);
        assert!(adaptive.switched_after.is_some());
        assert_eq!(exact.switched_after, None);
        assert_eq!(exact.approx_pairs, 0);
    }

    #[test]
    fn clean_data_gives_full_recall_to_every_mode() {
        let mut cfg = ExperimentConfig::adaptive(80, 12);
        cfg.data = DatagenConfig::clean(80, 12);
        for mode in [
            JoinMode::ExactOnly,
            JoinMode::ApproxOnly,
            JoinMode::Adaptive,
        ] {
            let r = run(&cfg.clone().with_mode(mode)).unwrap();
            assert!(
                (r.recall - 1.0).abs() < 1e-12,
                "{}: recall {}",
                mode.label(),
                r.recall
            );
            assert!(r.precision >= 0.99, "{}", mode.label());
        }
    }

    #[test]
    fn parallel_mode_matches_adaptive_results() {
        let base = ExperimentConfig::adaptive(120, 14);
        let adaptive = run(&base).unwrap();
        let parallel = run(&base.clone().with_mode(JoinMode::Parallel { shards: 3 })).unwrap();
        assert_eq!(parallel.pairs, adaptive.pairs);
        assert_eq!(parallel.correct, adaptive.correct);
        assert_eq!(parallel.recall, adaptive.recall);
        assert!(parallel.switched_after.is_some());
        assert_eq!(JoinMode::Parallel { shards: 3 }.label(), "parallel");
    }

    #[test]
    fn approx_only_emits_similarity_matches_for_dirty_keys() {
        let base = ExperimentConfig::adaptive(100, 15);
        let exact = run(&base.clone().with_mode(JoinMode::ExactOnly)).unwrap();
        let approx = run(&base.with_mode(JoinMode::ApproxOnly)).unwrap();
        assert!(
            approx.approx_pairs > 0,
            "dirty keys must match approximately"
        );
        assert!(approx.recall > exact.recall);
        assert_eq!(
            approx.switched_after, None,
            "the approximate-only baseline reports no mid-stream switch"
        );
    }

    #[test]
    fn report_rows_align_with_header() {
        let r = run(&ExperimentConfig::adaptive(60, 13)).unwrap();
        let header = header();
        let row = r.row("adaptive");
        assert_eq!(header.split_whitespace().count(), 8);
        assert_eq!(row.split_whitespace().count(), 8);
    }
}
