//! The single-run experiment harness.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use linkage_core::{AdaptiveJoin, AssessorConfig, ControllerConfig, MonitorConfig};
use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_exec::{ParallelJoin, ParallelJoinConfig};
use linkage_operators::{
    InterleavedScan, Operator, SshJoin, SwitchJoin, SwitchJoinConfig, SymmetricHashJoin,
};
use linkage_text::QGramConfig;
use linkage_types::{MatchPair, PerSide, RecordId, Result, VecStream};

/// Which join to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMode {
    /// Exact symmetric hash join only (the non-adaptive baseline).
    ExactOnly,
    /// Approximate SSH join from the first tuple.
    ApproxOnly,
    /// Exact join with the adaptive switch (the paper's system).
    Adaptive,
    /// The adaptive join sharded across worker threads by the parallel
    /// execution layer, with the global switch.
    Parallel {
        /// Number of worker shards.
        shards: usize,
    },
}

impl JoinMode {
    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            JoinMode::ExactOnly => "exact-only",
            JoinMode::ApproxOnly => "approx-only",
            JoinMode::Adaptive => "adaptive",
            JoinMode::Parallel { .. } => "parallel",
        }
    }
}

/// One experiment: a workload plus a join configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The generated workload.
    pub data: DatagenConfig,
    /// Which join to run.
    pub mode: JoinMode,
    /// Similarity threshold `θ_sim`.
    pub theta_sim: f64,
    /// Outlier threshold `θ_out` (adaptive mode).
    pub theta_out: f64,
    /// Monitor cadence in consumed child tuples (adaptive mode).
    pub check_every: u64,
    /// Q-gram configuration for the approximate phase.
    pub qgram: QGramConfig,
}

impl ExperimentConfig {
    /// The default adaptive experiment over a mid-stream-dirt workload.
    pub fn adaptive(parents: usize, seed: u64) -> Self {
        Self {
            data: DatagenConfig::mid_stream_dirty(parents, seed),
            mode: JoinMode::Adaptive,
            theta_sim: 0.8,
            theta_out: 0.01,
            check_every: 16,
            qgram: QGramConfig::default(),
        }
    }

    /// Same workload, different mode.
    #[must_use]
    pub fn with_mode(mut self, mode: JoinMode) -> Self {
        self.mode = mode;
        self
    }
}

/// The measured outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Distinct pairs emitted.
    pub pairs: usize,
    /// Pairs emitted with identical keys.
    pub exact_pairs: usize,
    /// Pairs emitted by similarity.
    pub approx_pairs: usize,
    /// Pairs that are correct according to ground truth.
    pub correct: usize,
    /// Size of the ground truth.
    pub true_matches: usize,
    /// `correct / true_matches`.
    pub recall: f64,
    /// `correct / pairs` (1.0 when no pairs were emitted).
    pub precision: f64,
    /// Input tuples consumed when the switch fired, if it did.
    pub switched_after: Option<u64>,
    /// Matches recovered from resident state during the switch.
    pub recovered: u64,
    /// Wall-clock time of the join (excludes data generation).
    pub elapsed: Duration,
}

impl ExperimentResult {
    /// One aligned report row; pair with [`header`].
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:<14} {pairs:>7} {exact:>7} {approx:>7} {recall:>7.3} {precision:>9.3} {switch:>8} {ms:>9.1}",
            pairs = self.pairs,
            exact = self.exact_pairs,
            approx = self.approx_pairs,
            recall = self.recall,
            precision = self.precision,
            switch = self
                .switched_after
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            ms = self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// The header matching [`ExperimentResult::row`].
pub fn header() -> String {
    format!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9} {:>8} {:>9}",
        "mode", "pairs", "exact", "approx", "recall", "precision", "switch", "ms"
    )
}

fn score(
    pairs: &[MatchPair],
    data: &GeneratedData,
    switched_after: Option<u64>,
    recovered: u64,
    elapsed: Duration,
) -> ExperimentResult {
    let truth: HashSet<(RecordId, RecordId)> = data.truth.iter().copied().collect();
    let exact_pairs = pairs.iter().filter(|p| p.kind.is_exact()).count();
    let correct = pairs
        .iter()
        .filter(|p| truth.contains(&p.id_pair()))
        .count();
    let recall = if truth.is_empty() {
        1.0
    } else {
        correct as f64 / truth.len() as f64
    };
    let precision = if pairs.is_empty() {
        1.0
    } else {
        correct as f64 / pairs.len() as f64
    };
    ExperimentResult {
        pairs: pairs.len(),
        exact_pairs,
        approx_pairs: pairs.len() - exact_pairs,
        correct,
        true_matches: truth.len(),
        recall,
        precision,
        switched_after,
        recovered,
        elapsed,
    }
}

/// Generate the workload and run the configured join over it.
pub fn run(config: &ExperimentConfig) -> Result<ExperimentResult> {
    let data = generate(&config.data)?;
    let keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
    let scan = InterleavedScan::alternating(
        VecStream::from_relation(&data.parents),
        VecStream::from_relation(&data.children),
    );
    let join_cfg = SwitchJoinConfig::new(keys)
        .with_theta(config.theta_sim)
        .with_qgram(config.qgram.clone());
    // One controller wiring for both adaptive modes, so the parallel
    // experiment always runs the exact test the serial reference runs.
    let controller = ControllerConfig {
        monitor: MonitorConfig::new(data.parents.len() as u64).with_check_every(config.check_every),
        assessor: AssessorConfig {
            theta_out: config.theta_out,
            ..AssessorConfig::default()
        },
    };

    let start = Instant::now();
    let (pairs, switched_after, recovered) = match config.mode {
        JoinMode::ExactOnly => {
            let mut join =
                SymmetricHashJoin::with_normalization(scan, keys, config.qgram.normalize);
            (join.run_to_end()?, None, 0)
        }
        JoinMode::ApproxOnly => {
            let mut join = SshJoin::new(scan, keys, config.qgram.clone(), config.theta_sim);
            (join.run_to_end()?, None, 0)
        }
        JoinMode::Adaptive => {
            let mut join = AdaptiveJoin::new(SwitchJoin::new(scan, join_cfg), controller);
            let pairs = join.run_to_end()?;
            let event = join.switch_event();
            (
                pairs,
                event.map(|e| e.after_tuples),
                event.map(|e| e.recovered).unwrap_or(0),
            )
        }
        JoinMode::Parallel { shards } => {
            let parallel_cfg = ParallelJoinConfig::new(shards, keys, data.parents.len() as u64)
                .with_join(join_cfg)
                .with_controller(controller);
            let mut join = ParallelJoin::new(scan, parallel_cfg);
            let pairs = join.run_to_end()?;
            let event = join.switch_event();
            (
                pairs,
                event.map(|e| e.after_tuples),
                event.map(|e| e.recovered).unwrap_or(0),
            )
        }
    };
    let elapsed = start.elapsed();
    Ok(score(&pairs, &data, switched_after, recovered, elapsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_exact_only_on_dirty_data() {
        let base = ExperimentConfig::adaptive(120, 11);
        let exact = run(&base.clone().with_mode(JoinMode::ExactOnly)).unwrap();
        let adaptive = run(&base).unwrap();
        assert!(adaptive.recall > exact.recall);
        assert!(adaptive.switched_after.is_some());
        assert_eq!(exact.switched_after, None);
        assert_eq!(exact.approx_pairs, 0);
    }

    #[test]
    fn clean_data_gives_full_recall_to_every_mode() {
        let mut cfg = ExperimentConfig::adaptive(80, 12);
        cfg.data = DatagenConfig::clean(80, 12);
        for mode in [
            JoinMode::ExactOnly,
            JoinMode::ApproxOnly,
            JoinMode::Adaptive,
        ] {
            let r = run(&cfg.clone().with_mode(mode)).unwrap();
            assert!(
                (r.recall - 1.0).abs() < 1e-12,
                "{}: recall {}",
                mode.label(),
                r.recall
            );
            assert!(r.precision >= 0.99, "{}", mode.label());
        }
    }

    #[test]
    fn parallel_mode_matches_adaptive_results() {
        let base = ExperimentConfig::adaptive(120, 14);
        let adaptive = run(&base).unwrap();
        let parallel = run(&base.clone().with_mode(JoinMode::Parallel { shards: 3 })).unwrap();
        assert_eq!(parallel.pairs, adaptive.pairs);
        assert_eq!(parallel.correct, adaptive.correct);
        assert_eq!(parallel.recall, adaptive.recall);
        assert!(parallel.switched_after.is_some());
        assert_eq!(JoinMode::Parallel { shards: 3 }.label(), "parallel");
    }

    #[test]
    fn report_rows_align_with_header() {
        let r = run(&ExperimentConfig::adaptive(60, 13)).unwrap();
        let header = header();
        let row = r.row("adaptive");
        assert_eq!(header.split_whitespace().count(), 8);
        assert_eq!(row.split_whitespace().count(), 8);
    }
}
