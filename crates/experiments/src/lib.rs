//! # linkage-experiments
//!
//! The reproduction harness behind the paper's figures and tables.  It
//! wires the full stack together — `linkage-datagen` workloads, the
//! operators of `linkage-operators`, the adaptive controller of
//! `linkage-core` — and scores the output against the generated ground
//! truth.
//!
//! [`run`] executes one configured join over one generated dataset and
//! returns an [`ExperimentResult`] with counts, quality metrics (recall /
//! precision against truth) and timings.  The binaries under `src/bin/`
//! each sweep one axis:
//!
//! | binary | axis |
//! |---|---|
//! | `run_all` | the three join modes on the mid-stream-dirt workload |
//! | `calibration` | similarity threshold vs dirty-pair similarity |
//! | `param_sweep` | `θ_out` × check cadence grid |
//! | `fig5_patterns` | position of the dirty region in the stream |
//! | `fig6_gain_cost` | recall gain vs runtime cost of adaptivity |
//! | `fig7_state_breakdown` | resident state of exact vs approximate joins |
//! | `fig8_cost_breakdown` | where the adaptive join spends its time |
//! | `table1` | per-operation micro costs |
//! | `bench_scaling` | shard-count scaling sweep → `BENCH_*.json` |
//! | `bench_probe` | interned probe-kernel insert/probe ns per tuple |
//!
//! [`scaling`] runs the sharded executor across a shard-count curve,
//! [`probe`] isolates the interned probe kernel's insert/probe ns-per-
//! tuple, [`traffic`] drives mixed multi-session traffic through an
//! in-process `linkage-server` (the `sessions_per_s` /
//! `request_p50_ms` / `request_p99_ms` fields, enabled by
//! `scripts/bench.sh --server`), and [`json`] renders the
//! machine-readable trajectory document that `scripts/bench.sh` writes
//! and CI gates against `bench/baseline.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod json;
pub mod probe;
pub mod scaling;
pub mod traffic;

pub use harness::{header, run, ExperimentConfig, ExperimentResult, JoinMode};
pub use json::{extract_number, JsonValue};
pub use probe::{
    run_probe_bench, ProbeBenchConfig, ProbeBenchResult, BATCH_SWEEP, PROBE_BATCH_SIZE,
};
pub use scaling::{
    run_scaling, scaling_report, ScalingConfig, ScalingPoint, ScalingRun, SnapshotBench,
};
pub use traffic::{run_server_bench, ServerBench, ServerBenchConfig};
