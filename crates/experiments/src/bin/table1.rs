//! Table 1 analogue: per-operation micro costs of the two join kernels —
//! q-gram extraction, exact probe+insert, approximate probe+insert.

use std::collections::VecDeque;
use std::time::Instant;

use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_operators::{ExactJoinCore, SshJoinCore};
use linkage_text::{GramInterner, NormalizeConfig, QGramConfig, QGramSet};
use linkage_types::{PerSide, Side, SidedRecord};

fn main() {
    let data = generate(&DatagenConfig::clean(2000, 42)).expect("datagen failed");
    let keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
    let locations = data.parents.column_strings("location").unwrap();

    // Q-gram extraction.
    let qgram = QGramConfig::default();
    let mut interner = GramInterner::new();
    let start = Instant::now();
    let mut grams = 0usize;
    for key in &locations {
        grams += QGramSet::extract(key, &qgram, &mut interner).len();
    }
    let per_extract = start.elapsed().as_nanos() as f64 / locations.len() as f64;

    // Exact probe+insert over the whole interleaved input.
    let mut exact = ExactJoinCore::new(keys, NormalizeConfig::default());
    let mut sink = VecDeque::new();
    let start = Instant::now();
    let mut steps = 0u64;
    for (side, relation) in [(Side::Left, &data.parents), (Side::Right, &data.children)] {
        for record in relation.records() {
            exact
                .process(SidedRecord::new(side, record.clone()), &mut sink)
                .expect("exact process failed");
            steps += 1;
        }
    }
    let per_exact = start.elapsed().as_nanos() as f64 / steps as f64;
    sink.clear();

    // Approximate probe+insert over the same input.
    let mut approx = SshJoinCore::new(keys, qgram, 0.8);
    let start = Instant::now();
    let mut steps = 0u64;
    for (side, relation) in [(Side::Left, &data.parents), (Side::Right, &data.children)] {
        for record in relation.records() {
            approx
                .process(SidedRecord::new(side, record.clone()), &mut sink)
                .expect("approx process failed");
            steps += 1;
        }
    }
    let per_approx = start.elapsed().as_nanos() as f64 / steps as f64;

    println!("{:<28} {:>12}", "operation", "ns/op");
    println!("{:<28} {:>12.0}", "q-gram extraction", per_extract);
    println!("{:<28} {:>12.0}", "exact probe+insert", per_exact);
    println!("{:<28} {:>12.0}", "approx probe+insert", per_approx);
    println!("\n({} grams extracted, outputs: {})", grams, sink.len());
}
