//! Fig. 6 analogue: the recall *gain* of adaptivity and the runtime *cost*
//! paid for it, as the fraction of dirty keys in the tail grows.

use linkage_experiments::{run, ExperimentConfig, JoinMode};

fn main() {
    println!(
        "{:>6} {:>13} {:>12} {:>11} {:>10}",
        "dirty", "recall(exact)", "recall(adpt)", "gain", "cost(×)"
    );
    for dirty_fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut cfg = ExperimentConfig::adaptive(600, 42);
        cfg.data.dirty_fraction = dirty_fraction;
        let exact = run(&cfg.clone().with_mode(JoinMode::ExactOnly)).expect("experiment failed");
        let adaptive = run(&cfg).expect("experiment failed");
        let cost = adaptive.elapsed.as_secs_f64() / exact.elapsed.as_secs_f64().max(1e-9);
        println!(
            "{:>6.2} {:>13.3} {:>12.3} {:>11.3} {:>10.1}",
            dirty_fraction,
            exact.recall,
            adaptive.recall,
            adaptive.recall - exact.recall,
            cost
        );
    }
}
