//! Fig. 7 analogue: resident state of the exact hash tables vs the
//! approximate inverted q-gram indexes, as input size grows (§2.3).

use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_operators::{InterleavedScan, Operator, SshJoin, SymmetricHashJoin};
use linkage_text::QGramConfig;
use linkage_types::{PerSide, Side, VecStream};

fn main() {
    println!(
        "{:>8} {:>12} {:>14} {:>16}",
        "parents", "exact tuples", "approx tuples", "posting entries"
    );
    for parents in [200usize, 400, 800] {
        let data = generate(&DatagenConfig::clean(parents, 42)).expect("datagen failed");
        let keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
        let scan = || {
            InterleavedScan::alternating(
                VecStream::from_relation(&data.parents),
                VecStream::from_relation(&data.children),
            )
        };

        let mut exact = SymmetricHashJoin::new(scan(), keys);
        exact.run_to_end().expect("exact join failed");

        let mut approx = SshJoin::new(scan(), keys, QGramConfig::default(), 0.8);
        approx.run_to_end().expect("approx join failed");
        let postings: usize = Side::BOTH
            .iter()
            .map(|&s| approx.indexes()[s].posting_entries())
            .sum();

        println!(
            "{:>8} {:>12} {:>14} {:>16}",
            parents,
            exact.stored().left + exact.stored().right,
            approx.stored().left + approx.stored().right,
            postings
        );
    }
    println!("\nposting entries grow with |key| + q − 1 per tuple (paper §2.3).");
}
