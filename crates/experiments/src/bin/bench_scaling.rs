//! Shard-count scaling bench → machine-readable `BENCH_*.json`.
//!
//! The binary behind `scripts/bench.sh`:
//!
//! ```text
//! bench_scaling [--smoke|--full] [--out PATH] [--sha SHA]
//!               [--baseline PATH] [--max-regression FRACTION]
//!               [--min-speedup FACTOR]
//! ```
//!
//! Runs the 1/2/4/8-shard sweep over the mid-stream-dirt workload (plus
//! the probe-kernel microbench feeding `probe_ns_per_tuple`), writes the
//! JSON report to `--out` (default: stdout only), and — when
//! `--baseline` is given — compares `headline_throughput_tuples_per_s`
//! **and** `probe_ns_per_tuple` against the baseline document, exiting
//! non-zero if throughput dropped, or the probe path slowed, by more
//! than `--max-regression` (default 0.20, the CI gate).
//!
//! The absolute-throughput gate is only meaningful against a baseline
//! from comparable hardware, so `--min-speedup` adds a hardware-
//! independent check: the 4-shard/1-shard throughput ratio must reach the
//! given factor.  It is skipped (with a note) on hosts with fewer than 4
//! cores, where no parallel speedup is physically possible.

use std::process::ExitCode;

use linkage_experiments::{extract_number, run_scaling, scaling_report, ScalingConfig};

struct Args {
    mode: &'static str,
    out: Option<String>,
    sha: String,
    baseline: Option<String>,
    max_regression: f64,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: "smoke",
        out: None,
        sha: std::env::var("GITHUB_SHA").unwrap_or_else(|_| "unknown".into()),
        baseline: None,
        max_regression: 0.20,
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--smoke" => args.mode = "smoke",
            "--full" => args.mode = "full",
            "--out" => args.out = Some(value("--out")?),
            "--sha" => args.sha = value("--sha")?,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--max-regression" => {
                args.max_regression = value("--max-regression")?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?
            }
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };
    let config = match args.mode {
        "full" => ScalingConfig::full(),
        _ => ScalingConfig::smoke(),
    };
    eprintln!(
        "bench_scaling: {} sweep, {} parents, shard curve {:?}",
        args.mode, config.parents, config.shard_counts
    );

    let run = match run_scaling(&config) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("bench_scaling: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for point in &run.points {
        eprintln!(
            "  {} shard(s): {:>9.0} tuples/s, {} pairs, switch at {:?}",
            point.shards, point.throughput, point.pairs, point.switch_after
        );
    }
    eprintln!(
        "  probe kernel: {:.0} ns/probe, {:.0} ns/insert",
        run.probe.probe_ns_per_tuple, run.probe.insert_ns_per_tuple
    );

    let report = scaling_report(&run, args.mode, &args.sha).render();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("bench_scaling: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench_scaling: wrote {path}");
        }
        None => print!("{report}"),
    }

    if let Some(path) = &args.baseline {
        let baseline_text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_scaling: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline) = extract_number(&baseline_text, "headline_throughput_tuples_per_s")
        else {
            eprintln!("bench_scaling: baseline {path} has no headline throughput");
            return ExitCode::FAILURE;
        };
        let current = run.headline_throughput();
        let floor = baseline * (1.0 - args.max_regression);
        eprintln!(
            "bench_scaling: headline {current:.0} tuples/s vs baseline {baseline:.0} \
             (floor {floor:.0}, max regression {:.0}%)",
            args.max_regression * 100.0
        );
        if current < floor {
            eprintln!("bench_scaling: REGRESSION — throughput below the gate");
            return ExitCode::FAILURE;
        }

        // The probe-kernel gate (lower is better): fail when the probe
        // path slowed down by more than the allowed fraction.  Skipped
        // with a note against baselines that predate the metric.
        match extract_number(&baseline_text, "probe_ns_per_tuple") {
            Some(baseline_probe) => {
                let current_probe = run.probe.probe_ns_per_tuple;
                let ceiling = baseline_probe * (1.0 + args.max_regression);
                eprintln!(
                    "bench_scaling: probe {current_probe:.0} ns/tuple vs baseline \
                     {baseline_probe:.0} (ceiling {ceiling:.0})"
                );
                if current_probe > ceiling {
                    eprintln!("bench_scaling: REGRESSION — probe kernel above the gate");
                    return ExitCode::FAILURE;
                }
            }
            None => {
                eprintln!(
                    "bench_scaling: baseline {path} has no probe_ns_per_tuple; \
                     probe gate skipped"
                );
            }
        }
    }

    if let Some(min_speedup) = args.min_speedup {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        if cores < 4 {
            eprintln!("bench_scaling: skipping --min-speedup gate: only {cores} core(s) available");
        } else {
            let Some(speedup) = run.speedup(4) else {
                eprintln!("bench_scaling: --min-speedup requires 1- and 4-shard points");
                return ExitCode::FAILURE;
            };
            eprintln!(
                "bench_scaling: 4-shard speedup {speedup:.2}x vs required {min_speedup:.2}x \
                 ({cores} cores)"
            );
            if speedup < min_speedup {
                eprintln!("bench_scaling: REGRESSION — parallel speedup below the gate");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
