//! Shard-count scaling bench → machine-readable `BENCH_*.json`.
//!
//! The binary behind `scripts/bench.sh`:
//!
//! ```text
//! bench_scaling [--smoke|--full] [--server] [--out PATH] [--sha SHA]
//!               [--baseline PATH] [--max-regression FRACTION]
//!               [--min-speedup FACTOR] [--summary PATH]
//! ```
//!
//! Runs the 1/2/4/8-shard sweep over the mid-stream-dirt workload (plus
//! the probe-kernel microbench feeding `probe_ns_per_tuple`, and its
//! skewed-workload twin feeding `skewed_probe_ns_per_tuple`), writes the
//! JSON report to `--out` (default: stdout only), and — when
//! `--baseline` is given — compares `headline_throughput_tuples_per_s`
//! **and** the `probe_ns_per_tuple` / `probe_batch_ns_per_tuple` /
//! `insert_ns_per_tuple` / `skewed_probe_ns_per_tuple` microbench
//! metrics against the baseline
//! document, exiting non-zero if throughput dropped, or a kernel path
//! slowed, by more than `--max-regression` (default 0.20, the CI gate).
//! The snapshot round trip is gated the same way: `snapshot_mb_per_s`
//! must not drop, and `resume_ms` must not grow, beyond the allowed
//! fraction (both skipped against baselines that predate the snapshot
//! subsystem).  `--server` additionally drives the `linkage-server`
//! mixed-traffic model and embeds + gates `sessions_per_s` (a floor)
//! and `request_p50_ms` / `request_p99_ms` (ceilings), each skipped
//! with a note against baselines that predate the server subsystem.
//!
//! `--summary PATH` appends a Markdown candidate-funnel delta table
//! (current vs baseline) to `PATH` — CI points it at
//! `$GITHUB_STEP_SUMMARY` so the prefix filter's effectiveness is
//! visible on every run.
//!
//! The absolute-throughput gate is only meaningful against a baseline
//! from comparable hardware, so `--min-speedup` adds a hardware-
//! independent check: the 4-shard/1-shard throughput ratio must reach the
//! given factor.  It is skipped (with a note) on hosts with fewer than 4
//! cores, where no parallel speedup is physically possible.

use std::fmt::Write as _;
use std::process::ExitCode;

use linkage_experiments::{extract_number, run_scaling, scaling_report, ScalingConfig, ScalingRun};

struct Args {
    mode: &'static str,
    server: bool,
    out: Option<String>,
    sha: String,
    baseline: Option<String>,
    max_regression: f64,
    min_speedup: Option<f64>,
    summary: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: "smoke",
        server: false,
        out: None,
        sha: std::env::var("GITHUB_SHA").unwrap_or_else(|_| "unknown".into()),
        baseline: None,
        max_regression: 0.20,
        min_speedup: None,
        summary: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--smoke" => args.mode = "smoke",
            "--full" => args.mode = "full",
            "--server" => args.server = true,
            "--out" => args.out = Some(value("--out")?),
            "--sha" => args.sha = value("--sha")?,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--max-regression" => {
                args.max_regression = value("--max-regression")?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?
            }
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                )
            }
            "--summary" => args.summary = Some(value("--summary")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = match args.mode {
        "full" => ScalingConfig::full(),
        _ => ScalingConfig::smoke(),
    };
    config.server_traffic = args.server;
    eprintln!(
        "bench_scaling: {} sweep, {} parents, shard curve {:?}",
        args.mode, config.parents, config.shard_counts
    );

    let run = match run_scaling(&config) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("bench_scaling: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for point in &run.points {
        eprintln!(
            "  {} shard(s): {:>9.0} tuples/s, {} pairs, switch at {:?}",
            point.shards, point.throughput, point.pairs, point.switch_after
        );
    }
    eprintln!(
        "  probe kernel: {:.0} ns/probe ({:.0} ns batched), {:.0} ns/insert",
        run.probe.probe_ns_per_tuple,
        run.probe.probe_batch_ns_per_tuple,
        run.probe.insert_ns_per_tuple
    );
    eprintln!(
        "  snapshot: {:.1} KiB written at {:.1} MB/s, resumed in {:.1} ms",
        run.snapshot.file_bytes as f64 / 1024.0,
        run.snapshot.snapshot_mb_per_s(),
        run.snapshot.resume.as_secs_f64() * 1e3
    );
    if let Some(server) = &run.server {
        eprintln!(
            "  server: {:.1} sessions/s over {} requests, p50 {:.2} ms, p99 {:.2} ms",
            server.sessions_per_s(),
            server.requests,
            server.request_p50_ms,
            server.request_p99_ms
        );
    }

    let report = scaling_report(&run, args.mode, &args.sha).render();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("bench_scaling: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench_scaling: wrote {path}");
        }
        None => print!("{report}"),
    }

    let baseline_text = match &args.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) => {
                eprintln!("bench_scaling: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Write the summary before any gate can fail the run: the funnel
    // deltas are most useful exactly when a regression is about to be
    // reported.
    if let Some(path) = &args.summary {
        let summary = funnel_summary(&run, baseline_text.as_deref());
        if let Err(e) = append_to(path, &summary) {
            eprintln!("bench_scaling: cannot append summary to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bench_scaling: appended candidate-funnel summary to {path}");
    }

    if let (Some(path), Some(baseline_text)) = (&args.baseline, &baseline_text) {
        let Some(baseline) = extract_number(baseline_text, "headline_throughput_tuples_per_s")
        else {
            eprintln!("bench_scaling: baseline {path} has no headline throughput");
            return ExitCode::FAILURE;
        };
        let current = run.headline_throughput();
        let floor = baseline * (1.0 - args.max_regression);
        eprintln!(
            "bench_scaling: headline {current:.0} tuples/s vs baseline {baseline:.0} \
             (floor {floor:.0}, max regression {:.0}%)",
            args.max_regression * 100.0
        );
        if current < floor {
            eprintln!("bench_scaling: REGRESSION — throughput below the gate");
            return ExitCode::FAILURE;
        }

        // The kernel gates (lower is better): fail when a microbench
        // path slowed down by more than the allowed fraction.  Each is
        // skipped with a note against baselines that predate its metric.
        let kernel_gates = [
            ("probe_ns_per_tuple", run.probe.probe_ns_per_tuple),
            (
                "probe_batch_ns_per_tuple",
                run.probe.probe_batch_ns_per_tuple,
            ),
            ("insert_ns_per_tuple", run.probe.insert_ns_per_tuple),
            (
                "skewed_probe_ns_per_tuple",
                run.probe_skewed.probe_ns_per_tuple,
            ),
        ];
        for (key, current) in kernel_gates {
            match extract_number(baseline_text, key) {
                Some(baseline) => {
                    let ceiling = baseline * (1.0 + args.max_regression);
                    eprintln!(
                        "bench_scaling: {key} {current:.0} vs baseline {baseline:.0} \
                         (ceiling {ceiling:.0})"
                    );
                    if current > ceiling {
                        eprintln!("bench_scaling: REGRESSION — {key} above the gate");
                        return ExitCode::FAILURE;
                    }
                }
                None => {
                    eprintln!("bench_scaling: baseline {path} has no {key}; gate skipped");
                }
            }
        }

        // The snapshot gates: write throughput must not drop, the resume
        // must not slow, by more than the allowed fraction.  Skipped with
        // a note against baselines that predate the snapshot subsystem.
        match extract_number(baseline_text, "snapshot_mb_per_s") {
            Some(baseline) => {
                let current = run.snapshot.snapshot_mb_per_s();
                let floor = baseline * (1.0 - args.max_regression);
                eprintln!(
                    "bench_scaling: snapshot_mb_per_s {current:.1} vs baseline {baseline:.1} \
                     (floor {floor:.1})"
                );
                if current < floor {
                    eprintln!("bench_scaling: REGRESSION — snapshot_mb_per_s below the gate");
                    return ExitCode::FAILURE;
                }
            }
            None => {
                eprintln!("bench_scaling: baseline {path} has no snapshot_mb_per_s; gate skipped")
            }
        }
        match extract_number(baseline_text, "resume_ms") {
            Some(baseline) => {
                let current = run.snapshot.resume.as_secs_f64() * 1e3;
                let ceiling = baseline * (1.0 + args.max_regression);
                eprintln!(
                    "bench_scaling: resume_ms {current:.1} vs baseline {baseline:.1} \
                     (ceiling {ceiling:.1})"
                );
                if current > ceiling {
                    eprintln!("bench_scaling: REGRESSION — resume_ms above the gate");
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("bench_scaling: baseline {path} has no resume_ms; gate skipped"),
        }

        // The server-traffic gates: the session rate must not drop, the
        // request-latency percentiles must not grow, by more than the
        // allowed fraction.  Run only when this sweep measured the model
        // (`--server`), and skipped with a note against baselines that
        // predate the server subsystem.
        if let Some(server) = &run.server {
            match extract_number(baseline_text, "sessions_per_s") {
                Some(baseline) => {
                    let current = server.sessions_per_s();
                    let floor = baseline * (1.0 - args.max_regression);
                    eprintln!(
                        "bench_scaling: sessions_per_s {current:.1} vs baseline {baseline:.1} \
                         (floor {floor:.1})"
                    );
                    if current < floor {
                        eprintln!("bench_scaling: REGRESSION — sessions_per_s below the gate");
                        return ExitCode::FAILURE;
                    }
                }
                None => {
                    eprintln!("bench_scaling: baseline {path} has no sessions_per_s; gate skipped")
                }
            }
            let mut latency_gates = vec![
                ("request_p50_ms", server.request_p50_ms),
                ("request_p99_ms", server.request_p99_ms),
            ];
            // The faulty-mode point gates only when this build measured
            // it (fault injection compiled in); baselines that predate
            // it skip with a note like every other new metric.
            if let Some(faulty) = server.faulty_request_p99_ms {
                latency_gates.push(("faulty_request_p99_ms", faulty));
            }
            for (key, current) in latency_gates {
                match extract_number(baseline_text, key) {
                    Some(baseline) => {
                        let ceiling = baseline * (1.0 + args.max_regression);
                        eprintln!(
                            "bench_scaling: {key} {current:.2} vs baseline {baseline:.2} \
                             (ceiling {ceiling:.2})"
                        );
                        if current > ceiling {
                            eprintln!("bench_scaling: REGRESSION — {key} above the gate");
                            return ExitCode::FAILURE;
                        }
                    }
                    None => {
                        eprintln!("bench_scaling: baseline {path} has no {key}; gate skipped")
                    }
                }
            }
        }
    }

    run_speedup_gate(&args, &run)
}

/// The Markdown candidate-funnel table for the job summary: the smoke
/// and skewed probe metrics of this run next to the baseline's, with
/// relative deltas where the baseline carries the field.
fn funnel_summary(run: &ScalingRun, baseline: Option<&str>) -> String {
    let rows = [
        (
            "probe ns/tuple",
            "probe_ns_per_tuple",
            run.probe.probe_ns_per_tuple,
        ),
        (
            "probe batch ns/tuple",
            "probe_batch_ns_per_tuple",
            run.probe.probe_batch_ns_per_tuple,
        ),
        (
            "candidates scanned",
            "candidates_scanned",
            run.probe.funnel.candidates_scanned as f64,
        ),
        (
            "after length filter",
            "candidates_after_length_filter",
            run.probe.funnel.candidates_after_length_filter as f64,
        ),
        (
            "verified",
            "candidates_verified",
            run.probe.funnel.candidates_verified as f64,
        ),
        (
            "prefix postings skipped",
            "prefix_postings_skipped",
            run.probe.funnel.prefix_postings_skipped as f64,
        ),
        (
            "skewed probe ns/tuple",
            "skewed_probe_ns_per_tuple",
            run.probe_skewed.probe_ns_per_tuple,
        ),
        (
            "skewed candidates scanned",
            "skewed_candidates_scanned",
            run.probe_skewed.funnel.candidates_scanned as f64,
        ),
        (
            "skewed prefix postings skipped",
            "skewed_prefix_postings_skipped",
            run.probe_skewed.funnel.prefix_postings_skipped as f64,
        ),
    ];
    let mut out = String::from(
        "### Candidate funnel vs baseline\n\n\
         | metric | current | baseline | Δ |\n|---|---:|---:|---:|\n",
    );
    for (label, key, current) in rows {
        let (base_text, delta) = match baseline.and_then(|text| extract_number(text, key)) {
            Some(base) if base != 0.0 => (
                format!("{base:.0}"),
                format!("{:+.1}%", (current - base) / base * 100.0),
            ),
            Some(base) => (format!("{base:.0}"), "n/a".to_string()),
            None => ("n/a".to_string(), "n/a".to_string()),
        };
        let _ = writeln!(out, "| {label} | {current:.0} | {base_text} | {delta} |");
    }
    out
}

fn append_to(path: &str, text: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(text.as_bytes())
}

fn run_speedup_gate(args: &Args, run: &ScalingRun) -> ExitCode {
    if let Some(min_speedup) = args.min_speedup {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        if cores < 4 {
            eprintln!("bench_scaling: skipping --min-speedup gate: only {cores} core(s) available");
        } else {
            let Some(speedup) = run.speedup(4) else {
                eprintln!("bench_scaling: --min-speedup requires 1- and 4-shard points");
                return ExitCode::FAILURE;
            };
            eprintln!(
                "bench_scaling: 4-shard speedup {speedup:.2}x vs required {min_speedup:.2}x \
                 ({cores} cores)"
            );
            if speedup < min_speedup {
                eprintln!("bench_scaling: REGRESSION — parallel speedup below the gate");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
