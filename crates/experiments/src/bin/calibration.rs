//! Calibrate the similarity threshold `θ_sim`: measure the q-gram Jaccard
//! similarity of (clean key, dirty key) pairs per edit count, and of
//! unrelated key pairs, then report the separation the threshold exploits.

use linkage_datagen::{generate, DatagenConfig};
use linkage_stats::OnlineMoments;
use linkage_text::{QGramJaccard, StringSimilarity};

fn main() {
    let sim = QGramJaccard::default();
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "population", "mean", "min", "max"
    );
    for edits in 1..=3usize {
        let cfg = DatagenConfig::mid_stream_dirty(300, 42)
            .with_edits(edits)
            .with_clean_prefix(0.0);
        let data = generate(&cfg).expect("datagen failed");
        let mut moments = OnlineMoments::new();
        for (parent_id, child_id) in &data.truth {
            let p = data.parents.record_by_id(*parent_id).unwrap();
            let c = data.children.record_by_id(*child_id).unwrap();
            moments.push(sim.similarity(p.key_str(1).unwrap(), c.key_str(1).unwrap()));
        }
        println!(
            "{:<22} {:>8.3} {:>8.3} {:>8.3}",
            format!("dirty pairs ({edits} edit)"),
            moments.mean().unwrap_or(0.0),
            moments.min().unwrap_or(0.0),
            moments.max().unwrap_or(0.0),
        );
    }

    // Unrelated pairs: parent i against parent i+1.
    let data = generate(&DatagenConfig::clean(300, 7)).expect("datagen failed");
    let keys = data.parents.column_strings("location").unwrap();
    let mut unrelated = OnlineMoments::new();
    for pair in keys.windows(2) {
        unrelated.push(sim.similarity(pair[0], pair[1]));
    }
    println!(
        "{:<22} {:>8.3} {:>8.3} {:>8.3}",
        "unrelated pairs",
        unrelated.mean().unwrap_or(0.0),
        unrelated.min().unwrap_or(0.0),
        unrelated.max().unwrap_or(0.0),
    );
    println!("\nθ_sim = 0.8 separates 1-edit dirt from unrelated keys.");
}
