//! Run the three join modes on the mid-stream-dirt workload and print a
//! side-by-side comparison (the headline result of the paper).

use linkage_experiments::{header, run, ExperimentConfig, JoinMode};

fn main() {
    let base = ExperimentConfig::adaptive(1000, 42);
    println!(
        "workload: {} parents, mid-stream dirt (clean prefix 50%)",
        base.data.parents
    );
    println!("{}", header());
    for mode in [
        JoinMode::ExactOnly,
        JoinMode::ApproxOnly,
        JoinMode::Adaptive,
    ] {
        let result = run(&base.clone().with_mode(mode)).expect("experiment failed");
        println!("{}", result.row(mode.label()));
    }
}
