//! Fig. 5 analogue: how the position of the dirty region in the child
//! stream affects the switch point and the recall of the adaptive join.

use linkage_experiments::{header, run, ExperimentConfig, JoinMode};

fn main() {
    println!("dirt-position sweep (600 parents, dirty tail after the clean prefix)");
    println!("{:>13} | {}", "clean prefix", header());
    for clean_prefix in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let mut cfg = ExperimentConfig::adaptive(600, 42);
        cfg.data.clean_prefix = clean_prefix;
        let adaptive = run(&cfg).expect("experiment failed");
        let exact = run(&cfg.clone().with_mode(JoinMode::ExactOnly)).expect("experiment failed");
        println!("{clean_prefix:>13.2} | {}", adaptive.row("adaptive"));
        println!("{:>13} | {}", "", exact.row("exact-only"));
    }
}
