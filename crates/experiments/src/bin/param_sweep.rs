//! Sweep the controller parameters `θ_out` × check cadence and report the
//! switch point and final recall of the adaptive join.

use linkage_experiments::{run, ExperimentConfig};

fn main() {
    println!(
        "{:>8} {:>12} {:>8} {:>7} {:>9}",
        "θ_out", "check_every", "switch", "recall", "precision"
    );
    for theta_out in [0.05, 0.01, 0.001] {
        for check_every in [8u64, 32, 128] {
            let mut cfg = ExperimentConfig::adaptive(600, 42);
            cfg.theta_out = theta_out;
            cfg.check_every = check_every;
            let r = run(&cfg).expect("experiment failed");
            println!(
                "{:>8} {:>12} {:>8} {:>7.3} {:>9.3}",
                theta_out,
                check_every,
                r.switched_after
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.recall,
                r.precision
            );
        }
    }
}
