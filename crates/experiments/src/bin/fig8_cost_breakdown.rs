//! Fig. 8 analogue: where the adaptive join's time goes — exact phase,
//! the switch (state migration + recovery probing), approximate phase.

use std::time::Instant;

use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_operators::{InterleavedScan, Operator, SwitchJoin, SwitchJoinConfig};
use linkage_types::{PerSide, VecStream};

fn main() {
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "parents", "exact ms", "switch ms", "approx ms", "recovered"
    );
    for parents in [200usize, 400, 800] {
        let data = generate(&DatagenConfig::mid_stream_dirty(parents, 42)).expect("datagen");
        let keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
        let scan = InterleavedScan::alternating(
            VecStream::from_relation(&data.parents),
            VecStream::from_relation(&data.children),
        );
        let mut join = SwitchJoin::new(scan, SwitchJoinConfig::new(keys));
        join.open().expect("open failed");

        // Run the exact phase to 75% of the stream: past the dirt onset at
        // 50%, like a real controller that needs evidence before switching,
        // so some missed matches are resident and recoverable.
        let exact_phase = 3 * (data.parents.len() + data.children.len()) / 4;
        let exact_start = Instant::now();
        for _ in 0..exact_phase {
            if !join.advance().expect("advance failed") {
                break;
            }
        }
        while join.pop().is_some() {}
        let exact_ms = exact_start.elapsed().as_secs_f64() * 1e3;

        // The switch itself: migration + recovery probing.
        let switch_start = Instant::now();
        let recovered = join.switch_to_approximate().expect("switch failed");
        let switch_ms = switch_start.elapsed().as_secs_f64() * 1e3;

        // Approximate phase over the remaining (dirty) tuples.
        let approx_start = Instant::now();
        while join.next().expect("next failed").is_some() {}
        let approx_ms = approx_start.elapsed().as_secs_f64() * 1e3;
        join.close().expect("close failed");

        println!(
            "{parents:>8} {exact_ms:>12.2} {switch_ms:>12.2} {approx_ms:>12.2} {recovered:>10}"
        );
    }
}
