//! Fig. 8 analogue: where the adaptive pipeline's time goes — exact
//! phase, the switch (state migration + recovery probing), approximate
//! phase — measured from the `linkage::api` event stream.
//!
//! The pipeline is forced to switch at 75% of the stream: past the dirt
//! onset at 50%, like a real controller that needs evidence before
//! switching, so some missed matches are resident and recoverable.

use std::time::Instant;

use linkage::api::{MatchEvent, Pipeline};
use linkage_datagen::{generate, DatagenConfig, GeneratedData};

fn main() {
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "parents", "exact ms", "switch ms", "approx ms", "recovered"
    );
    for parents in [200usize, 400, 800] {
        let data = generate(&DatagenConfig::mid_stream_dirty(parents, 42)).expect("datagen");
        let switch_at = 3 * (data.parents.len() + data.children.len()) / 4;
        let stream = Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
            .force_switch_at(switch_at as u64)
            .run()
            .expect("pipeline failed");

        // Split wall-clock time at the Switched event; the handover's own
        // cost is reported separately by the engine and subtracted from
        // the phase that contains it.
        let start = Instant::now();
        let mut until_switch_ms = 0.0f64;
        let mut recovered = 0u64;
        let mut switch_ms = 0.0f64;
        for event in stream {
            match event.expect("join failed") {
                MatchEvent::Switched(event) => {
                    until_switch_ms = start.elapsed().as_secs_f64() * 1e3;
                    recovered = event.recovered;
                }
                MatchEvent::Finished(report) => {
                    switch_ms = report.switch_latency.map_or(0.0, |d| d.as_secs_f64() * 1e3);
                }
                _ => {}
            }
        }
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        let exact_ms = (until_switch_ms - switch_ms).max(0.0);
        let approx_ms = (total_ms - until_switch_ms).max(0.0);

        println!(
            "{parents:>8} {exact_ms:>12.2} {switch_ms:>12.2} {approx_ms:>12.2} {recovered:>10}"
        );
    }
}
