//! Probe-kernel microbench → machine-readable JSON.
//!
//! ```text
//! bench_probe [--smoke|--full|--skewed] [--out PATH] [--sha SHA]
//! ```
//!
//! Runs the insert-only and probe-only loops of
//! [`linkage_experiments::run_probe_bench`] over the datagen workload and
//! writes the JSON document to `--out` (default: stdout).  The scaling
//! bench embeds the same two metrics into `BENCH_*.json` (where CI gates
//! `probe_ns_per_tuple` against the baseline); this binary exists for
//! quick standalone kernel measurements while iterating on the probe
//! path.

use std::process::ExitCode;

use linkage_experiments::{run_probe_bench, ProbeBenchConfig};

struct Args {
    mode: &'static str,
    out: Option<String>,
    sha: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: "smoke",
        out: None,
        sha: std::env::var("GITHUB_SHA").unwrap_or_else(|_| "unknown".into()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--smoke" => args.mode = "smoke",
            "--full" => args.mode = "full",
            "--skewed" => args.mode = "skewed",
            "--out" => args.out = Some(value("--out")?),
            "--sha" => args.sha = value("--sha")?,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_probe: {message}");
            return ExitCode::FAILURE;
        }
    };
    let config = match args.mode {
        "full" => ProbeBenchConfig::full(),
        "skewed" => ProbeBenchConfig::skewed(),
        _ => ProbeBenchConfig::smoke(),
    };
    eprintln!(
        "bench_probe: {} run, {} parents, θ_sim {}",
        args.mode, config.parents, config.theta
    );
    let result = match run_probe_bench(&config) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("bench_probe: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "bench_probe: insert {:.0} ns/tuple, probe {:.0} ns/tuple over {} residents \
         ({} pairs, {} distinct grams)",
        result.insert_ns_per_tuple,
        result.probe_ns_per_tuple,
        result.inserted,
        result.pairs,
        result.distinct_grams
    );
    for &(batch_size, ns) in &result.batch_sweep {
        eprintln!("bench_probe: batched probe @{batch_size:>5}: {ns:.0} ns/tuple");
    }
    let report = result.render(args.mode, &args.sha);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("bench_probe: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench_probe: wrote {path}");
        }
        None => print!("{report}"),
    }
    ExitCode::SUCCESS
}
