//! Minimal JSON emission and extraction for the bench pipeline.
//!
//! The workspace builds offline, so there is no `serde_json`; the bench
//! trajectory (`BENCH_*.json`) needs only a small, well-tested subset:
//! build a [`JsonValue`] tree, render it with [`JsonValue::render`], and
//! pull single numeric fields back out of a report with
//! [`extract_number`] (which is what the CI regression gate compares
//! against `bench/baseline.json`).  Swap for a real JSON crate if the
//! build environment ever gains registry access.

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.  Non-finite values render as `null`, since JSON
    /// has no representation for them.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Build a number value.
    pub fn num(n: impl Into<f64>) -> Self {
        JsonValue::Num(n.into())
    }

    /// Build an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Render as pretty-printed JSON (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Str(s) => Self::write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    Self::pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                Self::pad(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    Self::pad(out, indent + 1);
                    Self::write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                Self::pad(out, indent);
                out.push('}');
            }
        }
    }

    fn pad(out: &mut String, indent: usize) {
        for _ in 0..indent {
            out.push_str("  ");
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Extract the first numeric value stored under `key` anywhere in `json`.
///
/// A deliberately small scanner, not a parser: it looks for the quoted key
/// followed by a colon and reads the number after it, skipping matches
/// inside string values.  Sufficient for the flat metric fields the bench
/// gate compares; keys must be unique per document for unambiguous reads.
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(found) = json[from..].find(&needle) {
        let pos = from + found;
        from = pos + needle.len();
        // A genuine key opens its own quote at `pos`; if the prefix leaves
        // an unclosed string, this occurrence sits inside a value.
        if in_string(&json[..pos]) {
            continue;
        }
        let rest = json[from..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            continue;
        };
        let rest = rest.trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
            .unwrap_or(rest.len());
        if let Ok(n) = rest[..end].parse::<f64>() {
            return Some(n);
        }
    }
    None
}

/// Whether the scan position sits inside an (unclosed) JSON string —
/// approximated by quote parity over the prefix, ignoring escaped quotes.
fn in_string(prefix: &str) -> bool {
    let mut inside = false;
    let mut escaped = false;
    for c in prefix.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => inside = !inside,
            _ => {}
        }
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null\n");
        assert_eq!(JsonValue::Bool(true).render(), "true\n");
        assert_eq!(JsonValue::num(42).render(), "42\n");
        assert_eq!(JsonValue::num(1.5).render(), "1.5\n");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::str("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn renders_nested_structure() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::str("bench")),
            (
                "shards",
                JsonValue::Array(vec![JsonValue::num(1), JsonValue::num(2)]),
            ),
            ("empty", JsonValue::Array(vec![])),
            ("nested", JsonValue::object(vec![("x", JsonValue::num(3))])),
        ]);
        let text = v.render();
        assert!(text.starts_with("{\n  \"name\": \"bench\","));
        assert!(text.contains("\"shards\": [\n    1,\n    2\n  ]"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"nested\": {\n    \"x\": 3\n  }"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn extract_number_reads_rendered_fields() {
        let v = JsonValue::object(vec![
            ("throughput_tuples_per_s", JsonValue::num(12345.5)),
            (
                "note",
                JsonValue::str("throughput_tuples_per_s: not this 999"),
            ),
            ("negative", JsonValue::num(-2)),
            ("exponent", JsonValue::Num(1e-3)),
        ]);
        let text = v.render();
        assert_eq!(
            extract_number(&text, "throughput_tuples_per_s"),
            Some(12345.5)
        );
        assert_eq!(extract_number(&text, "negative"), Some(-2.0));
        assert_eq!(extract_number(&text, "exponent"), Some(0.001));
        assert_eq!(extract_number(&text, "missing"), None);
    }

    #[test]
    fn extract_number_skips_occurrences_inside_strings() {
        let text = r#"{ "label": "the \"headline\" metric", "headline": 7 }"#;
        assert_eq!(extract_number(text, "headline"), Some(7.0));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::num(8000.0).render(), "8000\n");
    }
}
