//! Probe-kernel microbenchmark: insert-only and probe-only ns/tuple.
//!
//! The scaling sweep's headline throughput mixes everything — scans,
//! routing, channels, the switch.  This module isolates the two
//! operations the interned-gram kernel exists to make fast:
//!
//! * **insert-only** — feed every parent tuple into one side of a fresh
//!   [`SshJoinCore`] (the opposite index is empty, so probing is a no-op
//!   and the loop measures tokenise + intern + posting appends);
//! * **probe-only** — pre-prepare every child tuple (tokenisation off the
//!   clock, exactly like the sharded router does), then probe them
//!   against the fully built parent index with `store = false`, measuring
//!   the pure epoch-counter probe path.
//!
//! [`run_probe_bench`] feeds the `probe_ns_per_tuple` /
//! `insert_ns_per_tuple` fields of the `BENCH_*.json` trajectory
//! documents (see [`crate::scaling`]), which CI gates against
//! `bench/baseline.json`; the standalone `bench_probe` binary prints the
//! same measurement as its own JSON document.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_operators::{PreparedBatch, ProbeFunnel, SshJoinCore};
use linkage_text::{QGramConfig, QGramSet};
use linkage_types::{defaults, PerSide, Result, ShardId, Side, SidedRecord};

use crate::json::JsonValue;

/// Batch sizes the batched-probe sweep measures.
pub const BATCH_SWEEP: [usize; 4] = [16, 64, 256, 1024];

/// The sweep point reported as `probe_batch_ns_per_tuple` (and gated in
/// CI): the sharded executor's default epoch batch
/// ([`defaults::EPOCH_BATCH_SIZE`]), so this is the batch size
/// production probes actually run at.
pub const PROBE_BATCH_SIZE: usize = defaults::EPOCH_BATCH_SIZE;

/// Configuration of one probe microbench run.
///
/// `#[non_exhaustive]`: construct via [`ProbeBenchConfig::smoke`],
/// [`ProbeBenchConfig::full`] or [`Default`] and adjust the fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ProbeBenchConfig {
    /// Parent-relation size of the generated workload (the resident
    /// index the probe loop runs against).
    pub parents: usize,
    /// Child records per parent (the probe side).
    pub children_per_parent: usize,
    /// Fraction of the child stream guaranteed clean (dirt follows) —
    /// kept in lock-step with the scaling sweep's workload so the gated
    /// `probe_ns_per_tuple` measures the same dirt profile.
    pub clean_prefix: f64,
    /// Workload seed.
    pub seed: u64,
    /// Similarity threshold `θ_sim` the kernel prunes against.
    pub theta: f64,
    /// Zipf exponent of the workload's key/gram frequency skew
    /// (`0.0` = the classic uniform workload; see
    /// [`DatagenConfig::zipf`]).
    pub zipf: f64,
}

impl Default for ProbeBenchConfig {
    fn default() -> Self {
        Self::smoke()
    }
}

impl ProbeBenchConfig {
    /// The CI smoke run: the scaling sweep's workload shape.
    pub fn smoke() -> Self {
        Self {
            parents: 4000,
            children_per_parent: 1,
            clean_prefix: 0.3,
            seed: 42,
            theta: defaults::THETA_SIM,
            zipf: 0.0,
        }
    }

    /// The larger local run.
    pub fn full() -> Self {
        Self {
            parents: 20_000,
            ..Self::smoke()
        }
    }

    /// The skewed smoke run: the same size as [`Self::smoke`] but with a
    /// Zipf(1) key/gram frequency skew — the frequent-gram, long-posting-
    /// list regime where prefix filtering matters most.
    pub fn skewed() -> Self {
        Self {
            zipf: 1.0,
            ..Self::smoke()
        }
    }
}

/// One probe microbench measurement.
#[derive(Debug, Clone)]
pub struct ProbeBenchResult {
    /// Tuples inserted (the resident index size, per side of the feed).
    pub inserted: u64,
    /// Tuples probed.
    pub probed: u64,
    /// Nanoseconds per insert-only tuple (tokenise + intern + postings).
    pub insert_ns_per_tuple: f64,
    /// Nanoseconds per probe-only tuple (epoch-counter probe of the full
    /// resident index; tokenisation pre-done, as at the sharded router).
    pub probe_ns_per_tuple: f64,
    /// Nanoseconds per tuple through the batched entry point
    /// (`probe_batch_into`) at [`PROBE_BATCH_SIZE`] tuples per batch.
    pub probe_batch_ns_per_tuple: f64,
    /// The full `(batch_size, ns_per_tuple)` sweep over [`BATCH_SWEEP`].
    pub batch_sweep: Vec<(usize, f64)>,
    /// Pairs the probe loop emitted (sanity: the workload must match).
    pub pairs: u64,
    /// Distinct grams interned over the whole run.
    pub distinct_grams: usize,
    /// Candidate-funnel counters accumulated by the probe loop: posting
    /// entries scanned vs skipped by the prefix filter, and candidates
    /// surviving the length filter and merge verification.
    pub funnel: ProbeFunnel,
}

impl ProbeBenchResult {
    /// Render as a standalone JSON document (the `bench_probe` binary's
    /// output format).
    pub fn render(&self, mode: &str, git_sha: &str) -> String {
        JsonValue::object(vec![
            ("schema_version", JsonValue::num(1)),
            ("bench", JsonValue::str("probe-kernel")),
            ("mode", JsonValue::str(mode)),
            ("git_sha", JsonValue::str(git_sha)),
            ("inserted", JsonValue::num(self.inserted as f64)),
            ("probed", JsonValue::num(self.probed as f64)),
            (
                "insert_ns_per_tuple",
                JsonValue::num(self.insert_ns_per_tuple),
            ),
            (
                "probe_ns_per_tuple",
                JsonValue::num(self.probe_ns_per_tuple),
            ),
            (
                "probe_batch_ns_per_tuple",
                JsonValue::num(self.probe_batch_ns_per_tuple),
            ),
            (
                "batch_sweep",
                JsonValue::Array(
                    self.batch_sweep
                        .iter()
                        .map(|&(batch_size, ns)| {
                            JsonValue::object(vec![
                                ("batch_size", JsonValue::num(batch_size as f64)),
                                ("ns_per_tuple", JsonValue::num(ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("pairs", JsonValue::num(self.pairs as f64)),
            ("distinct_grams", JsonValue::num(self.distinct_grams as f64)),
            (
                "candidates_scanned",
                JsonValue::num(self.funnel.candidates_scanned as f64),
            ),
            (
                "candidates_after_length_filter",
                JsonValue::num(self.funnel.candidates_after_length_filter as f64),
            ),
            (
                "candidates_verified",
                JsonValue::num(self.funnel.candidates_verified as f64),
            ),
            (
                "prefix_postings_skipped",
                JsonValue::num(self.funnel.prefix_postings_skipped as f64),
            ),
        ])
        .render()
    }
}

/// Run the insert-only and probe-only loops over a generated workload.
pub fn run_probe_bench(config: &ProbeBenchConfig) -> Result<ProbeBenchResult> {
    let data = generate(
        &DatagenConfig::mid_stream_dirty(config.parents, config.seed)
            .with_children_per_parent(config.children_per_parent)
            .with_clean_prefix(config.clean_prefix)
            .with_zipf(config.zipf),
    )?;
    let keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
    let mut core = SshJoinCore::new(keys, QGramConfig::default(), config.theta);
    let mut out = VecDeque::new();

    // Insert-only: every parent goes into the left index; the right index
    // is empty throughout, so each step is tokenise + intern + append.
    let start = Instant::now();
    let mut inserted = 0u64;
    for record in data.parents.records() {
        let sided = SidedRecord::new(Side::Left, record.clone());
        core.process(sided, &mut out)?;
        inserted += 1;
    }
    let insert_ns = start.elapsed().as_nanos() as f64 / (inserted.max(1)) as f64;
    debug_assert!(out.is_empty(), "insert-only loop must emit nothing");

    // Pre-prepare the probe side off the clock (the sharded router does
    // this once per tuple and broadcasts the ids).
    let prepared: Vec<(SidedRecord, Arc<str>, QGramSet)> = data
        .children
        .records()
        .iter()
        .map(|record| {
            let sided = SidedRecord::new(Side::Right, record.clone());
            let (key, grams) = core.prepare(&sided)?;
            Ok((sided, key, grams))
        })
        .collect::<Result<_>>()?;

    // Probe-only: store = false keeps the right index empty, so every
    // iteration pays exactly one probe of the full parent index.
    let start = Instant::now();
    let mut pairs = 0u64;
    for (sided, key, grams) in &prepared {
        core.process_prepared(sided, key, grams, false, &mut out)?;
        pairs += out.len() as u64;
        out.clear();
    }
    let probed = prepared.len() as u64;
    let probe_ns = start.elapsed().as_nanos() as f64 / (probed.max(1)) as f64;

    // Snapshot the funnel before the sweep so the reported counters
    // describe exactly one pass over the probe side (the serial loop);
    // the sweep re-probes the same tuples several times.
    let funnel = core.funnel();

    // Batched probe: the same prepared tuples through `probe_batch_into`
    // in `store_home = None` (probe-only) mode.  Batch assembly happens
    // off the clock — the sharded coordinator owns that cost — so each
    // timed pass is the batched scan + block-verify kernel alone.
    let mut batch_sweep = Vec::with_capacity(BATCH_SWEEP.len());
    let mut probe_batch_ns = 0.0;
    for &batch_size in &BATCH_SWEEP {
        let batches: Vec<PreparedBatch> = prepared
            .chunks(batch_size)
            .map(|chunk| {
                let mut batch = PreparedBatch::with_capacity(chunk.len());
                for (sided, key, grams) in chunk {
                    batch.push(sided.clone(), key.clone(), grams.clone(), ShardId(0));
                }
                batch
            })
            .collect();
        let start = Instant::now();
        let mut emitted = 0u64;
        for batch in &batches {
            emitted += core.probe_batch_into(batch, None, &mut out)? as u64;
            out.clear();
        }
        let ns = start.elapsed().as_nanos() as f64 / (probed.max(1)) as f64;
        debug_assert_eq!(emitted, pairs, "batched probe must emit the serial pairs");
        if batch_size == PROBE_BATCH_SIZE {
            probe_batch_ns = ns;
        }
        batch_sweep.push((batch_size, ns));
    }

    Ok(ProbeBenchResult {
        inserted,
        probed,
        insert_ns_per_tuple: insert_ns,
        probe_ns_per_tuple: probe_ns,
        probe_batch_ns_per_tuple: probe_batch_ns,
        batch_sweep,
        pairs,
        distinct_grams: core.interner().len(),
        funnel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::extract_number;

    fn tiny() -> ProbeBenchConfig {
        ProbeBenchConfig {
            parents: 60,
            seed: 7,
            ..ProbeBenchConfig::smoke()
        }
    }

    #[test]
    fn microbench_measures_both_loops() {
        let result = run_probe_bench(&tiny()).unwrap();
        assert_eq!(result.inserted, 60);
        assert_eq!(result.probed, 60);
        assert!(result.insert_ns_per_tuple > 0.0);
        assert!(result.probe_ns_per_tuple > 0.0);
        assert!(result.pairs > 0, "children must match their parents");
        assert!(result.distinct_grams > 0);
        // The probe loop populates the candidate funnel, and matching
        // pairs must have been verified.
        assert!(result.funnel.candidates_scanned > 0);
        assert!(result.funnel.candidates_verified >= result.pairs);
        assert!(
            result.funnel.prefix_postings_skipped > result.funnel.candidates_scanned,
            "at θ_sim = 0.8 the Jaccard prefix skips most postings"
        );
        // The batch sweep covers every configured size and measured the
        // canonical point (the debug assertion inside `run_probe_bench`
        // already checked the batched pairs match the serial pairs).
        assert_eq!(
            result
                .batch_sweep
                .iter()
                .map(|&(s, _)| s)
                .collect::<Vec<_>>(),
            BATCH_SWEEP.to_vec()
        );
        assert!(result.batch_sweep.iter().all(|&(_, ns)| ns > 0.0));
        assert!(result.probe_batch_ns_per_tuple > 0.0);
        assert!(BATCH_SWEEP.contains(&PROBE_BATCH_SIZE));
    }

    #[test]
    fn skewed_preset_exercises_the_frequent_gram_regime() {
        let uniform = run_probe_bench(&tiny()).unwrap();
        let skewed = run_probe_bench(&ProbeBenchConfig {
            zipf: 1.0,
            ..tiny()
        })
        .unwrap();
        // Shared pool words mean fewer distinct grams and longer posting
        // lists — more skipped prefix work per scanned posting.
        assert!(skewed.distinct_grams < uniform.distinct_grams);
        let ratio = |r: &ProbeBenchResult| {
            r.funnel.prefix_postings_skipped as f64 / r.funnel.candidates_scanned.max(1) as f64
        };
        assert!(
            ratio(&skewed) > ratio(&uniform),
            "skew must increase the skipped/scanned ratio ({} vs {})",
            ratio(&skewed),
            ratio(&uniform)
        );
        assert_eq!(ProbeBenchConfig::skewed().zipf, 1.0);
        assert_eq!(
            ProbeBenchConfig::skewed().parents,
            ProbeBenchConfig::smoke().parents
        );
    }

    #[test]
    fn render_round_trips_through_the_extractor() {
        let result = run_probe_bench(&tiny()).unwrap();
        let text = result.render("smoke", "deadbeef");
        assert_eq!(
            extract_number(&text, "probe_ns_per_tuple"),
            Some(result.probe_ns_per_tuple)
        );
        assert_eq!(
            extract_number(&text, "insert_ns_per_tuple"),
            Some(result.insert_ns_per_tuple)
        );
        assert_eq!(
            extract_number(&text, "probe_batch_ns_per_tuple"),
            Some(result.probe_batch_ns_per_tuple)
        );
        assert!(text.contains("\"batch_sweep\""));
        assert!(text.contains("\"batch_size\""));
        assert!(text.contains("\"bench\": \"probe-kernel\""));
        assert!(text.contains("\"git_sha\": \"deadbeef\""));
        assert_eq!(
            extract_number(&text, "candidates_scanned"),
            Some(result.funnel.candidates_scanned as f64)
        );
        assert_eq!(
            extract_number(&text, "candidates_after_length_filter"),
            Some(result.funnel.candidates_after_length_filter as f64)
        );
        assert_eq!(
            extract_number(&text, "candidates_verified"),
            Some(result.funnel.candidates_verified as f64)
        );
        assert_eq!(
            extract_number(&text, "prefix_postings_skipped"),
            Some(result.funnel.prefix_postings_skipped as f64)
        );
    }

    #[test]
    fn presets_share_the_shape() {
        let smoke = ProbeBenchConfig::smoke();
        let full = ProbeBenchConfig::full();
        assert!(full.parents > smoke.parents);
        assert_eq!(smoke.theta, full.theta);
    }
}
