//! Shard-count scaling measurements behind the `BENCH_*.json` trajectory.
//!
//! One [`ScalingRun`] generates a mid-stream-dirt workload once, then
//! drives the parallel executor over it at each configured shard count,
//! measuring throughput, the global switch point and latency, and
//! per-shard resident-state size.  [`scaling_report`] renders the result
//! as the machine-readable JSON document `scripts/bench.sh` writes and CI
//! gates on:
//!
//! * `headline_throughput_tuples_per_s` — best throughput over the shard
//!   curve; the single number the regression gate compares;
//! * `shards[]` — the full 1/2/4/8 scaling curve with per-shard state
//!   bytes and switch latency;
//! * `snapshot_mb_per_s` / `resume_ms` — the checkpoint/resume round
//!   trip over the same workload (see `docs/format.md`), gated alongside
//!   the kernel metrics;
//! * `git_sha`, `mode`, workload and host metadata, so any two trajectory
//!   files are comparable.

use std::time::{Duration, Instant};

use linkage::api::{Pipeline, PipelineBuilder};
use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_operators::ProbeFunnel;
use linkage_types::{LinkageError, Result};

use crate::json::JsonValue;
use crate::probe::{run_probe_bench, ProbeBenchConfig, ProbeBenchResult};
use crate::traffic::{run_server_bench, ServerBench, ServerBenchConfig};

/// Configuration of one scaling sweep.
///
/// `#[non_exhaustive]`: construct via [`ScalingConfig::smoke`],
/// [`ScalingConfig::full`] or [`Default`] and adjust the public fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ScalingConfig {
    /// Parent-relation size of the generated workload.
    pub parents: usize,
    /// Child records per parent.
    pub children_per_parent: usize,
    /// Fraction of the child stream guaranteed clean (dirt follows).
    pub clean_prefix: f64,
    /// Workload seed.
    pub seed: u64,
    /// Shard counts to sweep, in order.
    pub shard_counts: Vec<usize>,
    /// Epoch size handed to the executor.
    pub batch_size: usize,
    /// Also run the `linkage-server` mixed-traffic model
    /// ([`ScalingConfig::server_config`]) and embed its metrics.
    pub server_traffic: bool,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self::smoke()
    }
}

impl ScalingConfig {
    /// The CI smoke sweep: seconds of wall clock, shard curve 1/2/4/8.
    pub fn smoke() -> Self {
        Self {
            parents: 4000,
            children_per_parent: 1,
            clean_prefix: 0.3,
            seed: 42,
            shard_counts: vec![1, 2, 4, 8],
            batch_size: 256,
            server_traffic: false,
        }
    }

    /// The local full sweep: the same shape, an order of magnitude more
    /// data.
    pub fn full() -> Self {
        Self {
            parents: 20_000,
            ..Self::smoke()
        }
    }

    /// Total input tuples the workload produces.
    pub fn total_tuples(&self) -> u64 {
        (self.parents + self.parents * self.children_per_parent) as u64
    }

    /// The probe-microbench configuration matching this sweep's workload
    /// — same size, dirt profile and seed, so the gated
    /// `probe_ns_per_tuple` measures the same data the `shards[]` points
    /// ran over.
    pub fn probe_config(&self) -> ProbeBenchConfig {
        let mut probe = ProbeBenchConfig::smoke();
        probe.parents = self.parents;
        probe.children_per_parent = self.children_per_parent;
        probe.clean_prefix = self.clean_prefix;
        probe.seed = self.seed;
        probe
    }

    /// The **skewed** probe point: the same shape as
    /// [`Self::probe_config`] under a Zipf(1) key/gram frequency skew —
    /// the long-posting-list regime prefix filtering targets.  Feeds the
    /// gated `skewed_probe_ns_per_tuple` field.
    pub fn skewed_probe_config(&self) -> ProbeBenchConfig {
        let mut probe = self.probe_config();
        probe.zipf = ProbeBenchConfig::skewed().zipf;
        probe
    }

    /// The server mixed-traffic point matching this sweep's scale:
    /// smoke-sized sweeps get the smoke traffic model, full-sized ones
    /// the full model.  Feeds the gated `sessions_per_s` /
    /// `request_p50_ms` / `request_p99_ms` fields when the sweep runs
    /// with the server bench enabled.
    pub fn server_config(&self) -> ServerBenchConfig {
        if self.parents >= ScalingConfig::full().parents {
            ServerBenchConfig::full()
        } else {
            ServerBenchConfig::smoke()
        }
    }

    fn datagen(&self) -> DatagenConfig {
        DatagenConfig::mid_stream_dirty(self.parents, self.seed)
            .with_children_per_parent(self.children_per_parent)
            .with_clean_prefix(self.clean_prefix)
    }
}

/// One measured point on the shard curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Shard count of this run.
    pub shards: usize,
    /// Wall-clock time of the join (excludes data generation).
    pub elapsed: Duration,
    /// Consumed input tuples per second.
    pub throughput: f64,
    /// Distinct pairs emitted.
    pub pairs: u64,
    /// Consumed tuples at the global switch, if it fired.
    pub switch_after: Option<u64>,
    /// Wall-clock duration of the distributed handover, if it ran.
    pub switch_latency: Option<Duration>,
    /// Matches recovered during the handover.
    pub recovered: u64,
    /// Final resident-state bytes (tuples, keys, flat postings — gram
    /// text excluded), one entry per shard.
    pub state_bytes_per_shard: Vec<u64>,
    /// Estimated bytes of the run's **shared** gram-interner table,
    /// counted once (every shard holds a handle to the same table).
    pub interner_bytes: u64,
    /// Flat-posting slack bytes summed over shards (empty slot headers
    /// plus unused posting capacity), reported separately from
    /// `state_bytes_per_shard` so payload and layout overhead stay
    /// distinguishable.
    pub postings_slack_bytes: u64,
    /// The join-wide candidate funnel of this point's run (all shards
    /// folded together).
    pub funnel: ProbeFunnel,
}

/// The snapshot/resume round trip measured over the sweep workload: a
/// serial pipeline is interrupted mid-stream (past the §3.3 switch, so
/// the file carries the approximate-phase state), checkpointed with
/// `MatchStream::snapshot`, and resumed with `Pipeline::resume`.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotBench {
    /// Size of the written snapshot container.
    pub file_bytes: u64,
    /// Wall clock of `MatchStream::snapshot` — quiesce + encode + CRC +
    /// atomic write.
    pub snapshot: Duration,
    /// Wall clock of `Pipeline::resume` — read + verify + replay into
    /// fresh kernels + input fast-forward.
    pub resume: Duration,
}

impl SnapshotBench {
    /// Snapshot write throughput, the gated headline of this measurement.
    pub fn snapshot_mb_per_s(&self) -> f64 {
        (self.file_bytes as f64 / 1e6) / self.snapshot.as_secs_f64().max(1e-9)
    }
}

/// A completed sweep: the workload description plus every measured point.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// The configuration that produced this run.
    pub config: ScalingConfig,
    /// Points in the order of `config.shard_counts`.
    pub points: Vec<ScalingPoint>,
    /// The probe-kernel microbench over the same workload (the
    /// `probe_ns_per_tuple` / `insert_ns_per_tuple` fields of the JSON
    /// document, gated by CI alongside the headline).
    pub probe: ProbeBenchResult,
    /// The probe-kernel microbench over the **skewed** (Zipf) workload
    /// (the `skewed_probe_ns_per_tuple` field, also gated).
    pub probe_skewed: ProbeBenchResult,
    /// The snapshot/resume round trip (the `snapshot_mb_per_s` /
    /// `resume_ms` fields, gated by CI alongside the kernel metrics).
    pub snapshot: SnapshotBench,
    /// The `linkage-server` mixed-traffic point (the `sessions_per_s` /
    /// `request_p50_ms` / `request_p99_ms` fields) — `None` unless the
    /// sweep ran with the server bench enabled (`bench.sh --server`).
    pub server: Option<ServerBench>,
}

impl ScalingRun {
    /// Best throughput over the curve — the regression gate's headline.
    pub fn headline_throughput(&self) -> f64 {
        self.points.iter().map(|p| p.throughput).fold(0.0, f64::max)
    }

    /// Throughput of the N-shard point relative to the 1-shard point.
    pub fn speedup(&self, shards: usize) -> Option<f64> {
        let single = self.points.iter().find(|p| p.shards == 1)?;
        let multi = self.points.iter().find(|p| p.shards == shards)?;
        Some(multi.throughput / single.throughput)
    }
}

/// Execute the sweep: one generated workload, one pipeline run per shard
/// count, all through the `linkage::api` facade.
pub fn run_scaling(config: &ScalingConfig) -> Result<ScalingRun> {
    let data = generate(&config.datagen())?;
    let mut points = Vec::with_capacity(config.shard_counts.len());
    for &shards in &config.shard_counts {
        let pipeline = Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
            .sharded(shards)
            .batch_size(config.batch_size)
            .build()?;
        let start = Instant::now();
        let outcome = pipeline.collect()?;
        let elapsed = start.elapsed();
        let report = &outcome.report;
        points.push(ScalingPoint {
            shards,
            elapsed,
            throughput: report.total_consumed() as f64 / elapsed.as_secs_f64().max(1e-9),
            pairs: outcome.matches.len() as u64,
            switch_after: report.switch.map(|e| e.after_tuples),
            switch_latency: report.switch_latency,
            recovered: report.switch.map(|e| e.recovered).unwrap_or(0),
            state_bytes_per_shard: report
                .shard_stats
                .iter()
                .map(|s| (s.state_bytes.left + s.state_bytes.right) as u64)
                .collect(),
            interner_bytes: report.interner_bytes() as u64,
            postings_slack_bytes: report.postings_slack_bytes() as u64,
            funnel: report.probe_funnel(),
        });
    }
    let probe = run_probe_bench(&config.probe_config())?;
    let probe_skewed = run_probe_bench(&config.skewed_probe_config())?;
    let snapshot = run_snapshot_bench(config, &data)?;
    let server = if config.server_traffic {
        Some(run_server_bench(&config.server_config())?)
    } else {
        None
    };
    Ok(ScalingRun {
        config: config.clone(),
        points,
        probe,
        probe_skewed,
        snapshot,
        server,
    })
}

/// Interrupt a serial run over `data` halfway through its output, time
/// the checkpoint and the resume, and report both with the file size.
fn run_snapshot_bench(config: &ScalingConfig, data: &GeneratedData) -> Result<SnapshotBench> {
    let declare = || -> PipelineBuilder {
        Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
            .serial()
    };
    // Half the parent count in pairs lands well past the mid-stream
    // switch on this workload, so the snapshot carries the interner and
    // the approximate kernel — the expensive sections.
    let mut stream = declare().run()?;
    for _ in 0..config.parents / 2 {
        match stream.next() {
            Some(event) => {
                event?;
            }
            None => {
                return Err(LinkageError::execution(
                    "snapshot bench: the stream ended before the checkpoint",
                ))
            }
        }
    }
    let path =
        std::env::temp_dir().join(format!("linkage-bench-snapshot-{}.bin", std::process::id()));
    let start = Instant::now();
    stream.snapshot(&path)?;
    let snapshot = start.elapsed();
    drop(stream); // the interrupted pipeline is abandoned here
    let file_bytes = std::fs::metadata(&path)?.len();
    let start = Instant::now();
    let resumed = declare().resume(&path)?;
    let resume = start.elapsed();
    drop(resumed);
    std::fs::remove_file(&path).ok();
    Ok(SnapshotBench {
        file_bytes,
        snapshot,
        resume,
    })
}

/// Render a candidate funnel as a JSON object (per-point embedding; the
/// top-level gated fields use flat, uniquely named keys instead).
fn funnel_json(funnel: &ProbeFunnel) -> JsonValue {
    JsonValue::object(vec![
        ("scanned", JsonValue::num(funnel.candidates_scanned as f64)),
        (
            "after_length_filter",
            JsonValue::num(funnel.candidates_after_length_filter as f64),
        ),
        (
            "verified",
            JsonValue::num(funnel.candidates_verified as f64),
        ),
        (
            "prefix_skipped",
            JsonValue::num(funnel.prefix_postings_skipped as f64),
        ),
    ])
}

/// Render a sweep as the `BENCH_*.json` document.
pub fn scaling_report(run: &ScalingRun, mode: &str, git_sha: &str) -> JsonValue {
    let points: Vec<JsonValue> = run
        .points
        .iter()
        .map(|p| {
            JsonValue::object(vec![
                ("shards", JsonValue::num(p.shards as f64)),
                ("elapsed_ms", JsonValue::num(p.elapsed.as_secs_f64() * 1e3)),
                ("throughput_tuples_per_s", JsonValue::num(p.throughput)),
                ("pairs", JsonValue::num(p.pairs as f64)),
                (
                    "switch_after_tuples",
                    p.switch_after
                        .map_or(JsonValue::Null, |n| JsonValue::num(n as f64)),
                ),
                (
                    "switch_latency_ms",
                    p.switch_latency
                        .map_or(JsonValue::Null, |d| JsonValue::num(d.as_secs_f64() * 1e3)),
                ),
                ("recovered_at_switch", JsonValue::num(p.recovered as f64)),
                (
                    "state_bytes_per_shard",
                    JsonValue::Array(
                        p.state_bytes_per_shard
                            .iter()
                            .map(|&b| JsonValue::num(b as f64))
                            .collect(),
                    ),
                ),
                ("interner_bytes", JsonValue::num(p.interner_bytes as f64)),
                (
                    "postings_slack_bytes",
                    JsonValue::num(p.postings_slack_bytes as f64),
                ),
                ("funnel", funnel_json(&p.funnel)),
            ])
        })
        .collect();
    let speedups: Vec<JsonValue> = run
        .config
        .shard_counts
        .iter()
        .filter(|&&s| s > 1)
        .filter_map(|&s| {
            run.speedup(s).map(|v| {
                JsonValue::object(vec![
                    ("shards", JsonValue::num(s as f64)),
                    ("speedup_vs_1_shard", JsonValue::num(v)),
                ])
            })
        })
        .collect();
    let mut report = JsonValue::object(vec![
        ("schema_version", JsonValue::num(1)),
        ("bench", JsonValue::str("adaptive-parallel-scaling")),
        ("mode", JsonValue::str(mode)),
        ("git_sha", JsonValue::str(git_sha)),
        (
            "workload",
            JsonValue::object(vec![
                ("parents", JsonValue::num(run.config.parents as f64)),
                (
                    "children_per_parent",
                    JsonValue::num(run.config.children_per_parent as f64),
                ),
                ("clean_prefix", JsonValue::num(run.config.clean_prefix)),
                ("seed", JsonValue::num(run.config.seed as f64)),
                (
                    "total_tuples",
                    JsonValue::num(run.config.total_tuples() as f64),
                ),
            ]),
        ),
        (
            "host",
            JsonValue::object(vec![
                (
                    "available_parallelism",
                    JsonValue::num(
                        std::thread::available_parallelism().map_or(1, usize::from) as f64
                    ),
                ),
                // Explicit single-core marker: on a 1-core host the
                // shards[] curve measures oversubscribed threads, not
                // parallel speedup — readers of the trajectory must not
                // compare its speedups against multi-core points.
                (
                    "single_core",
                    JsonValue::Bool(
                        std::thread::available_parallelism().map_or(1, usize::from) == 1,
                    ),
                ),
            ]),
        ),
        (
            "headline_throughput_tuples_per_s",
            JsonValue::num(run.headline_throughput()),
        ),
        (
            "probe_ns_per_tuple",
            JsonValue::num(run.probe.probe_ns_per_tuple),
        ),
        (
            "probe_batch_ns_per_tuple",
            JsonValue::num(run.probe.probe_batch_ns_per_tuple),
        ),
        (
            "batch_sweep",
            JsonValue::Array(
                run.probe
                    .batch_sweep
                    .iter()
                    .map(|&(batch_size, ns)| {
                        JsonValue::object(vec![
                            ("batch_size", JsonValue::num(batch_size as f64)),
                            ("ns_per_tuple", JsonValue::num(ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "insert_ns_per_tuple",
            JsonValue::num(run.probe.insert_ns_per_tuple),
        ),
        (
            "candidates_scanned",
            JsonValue::num(run.probe.funnel.candidates_scanned as f64),
        ),
        (
            "candidates_after_length_filter",
            JsonValue::num(run.probe.funnel.candidates_after_length_filter as f64),
        ),
        (
            "candidates_verified",
            JsonValue::num(run.probe.funnel.candidates_verified as f64),
        ),
        (
            "prefix_postings_skipped",
            JsonValue::num(run.probe.funnel.prefix_postings_skipped as f64),
        ),
        (
            "skewed_probe_ns_per_tuple",
            JsonValue::num(run.probe_skewed.probe_ns_per_tuple),
        ),
        (
            "skewed_probe_batch_ns_per_tuple",
            JsonValue::num(run.probe_skewed.probe_batch_ns_per_tuple),
        ),
        (
            "skewed_insert_ns_per_tuple",
            JsonValue::num(run.probe_skewed.insert_ns_per_tuple),
        ),
        (
            "skewed_candidates_scanned",
            JsonValue::num(run.probe_skewed.funnel.candidates_scanned as f64),
        ),
        (
            "skewed_candidates_after_length_filter",
            JsonValue::num(run.probe_skewed.funnel.candidates_after_length_filter as f64),
        ),
        (
            "skewed_candidates_verified",
            JsonValue::num(run.probe_skewed.funnel.candidates_verified as f64),
        ),
        (
            "skewed_prefix_postings_skipped",
            JsonValue::num(run.probe_skewed.funnel.prefix_postings_skipped as f64),
        ),
        (
            "snapshot_file_bytes",
            JsonValue::num(run.snapshot.file_bytes as f64),
        ),
        (
            "snapshot_ms",
            JsonValue::num(run.snapshot.snapshot.as_secs_f64() * 1e3),
        ),
        (
            "snapshot_mb_per_s",
            JsonValue::num(run.snapshot.snapshot_mb_per_s()),
        ),
        (
            "resume_ms",
            JsonValue::num(run.snapshot.resume.as_secs_f64() * 1e3),
        ),
        ("speedups", JsonValue::Array(speedups)),
        ("shards", JsonValue::Array(points)),
    ]);
    // The server-traffic fields are appended only when that model ran,
    // so a document without them reads unambiguously as "not measured"
    // (the gates skip with a note) rather than as a zero.
    if let Some(server) = &run.server {
        if let JsonValue::Object(fields) = &mut report {
            fields.push((
                "sessions_per_s".into(),
                JsonValue::num(server.sessions_per_s()),
            ));
            fields.push((
                "request_p50_ms".into(),
                JsonValue::num(server.request_p50_ms),
            ));
            fields.push((
                "request_p99_ms".into(),
                JsonValue::num(server.request_p99_ms),
            ));
            fields.push((
                "server_sessions".into(),
                JsonValue::num(server.sessions as f64),
            ));
            fields.push((
                "server_requests".into(),
                JsonValue::num(server.requests as f64),
            ));
            // Present only when the bench was built with fault injection
            // (`--features fault`): absent reads as "not measured".
            if let Some(p99) = server.faulty_request_p99_ms {
                fields.push(("faulty_request_p99_ms".into(), JsonValue::num(p99)));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::extract_number;

    fn tiny() -> ScalingConfig {
        ScalingConfig {
            parents: 80,
            children_per_parent: 1,
            clean_prefix: 0.3,
            seed: 7,
            shard_counts: vec![1, 2],
            batch_size: 32,
            server_traffic: false,
        }
    }

    #[test]
    fn sweep_measures_every_shard_count_identically() {
        let run = run_scaling(&tiny()).unwrap();
        assert_eq!(run.points.len(), 2);
        assert_eq!(run.points[0].shards, 1);
        assert_eq!(run.points[1].shards, 2);
        assert_eq!(
            run.points[0].pairs, run.points[1].pairs,
            "shard count must not change the result size"
        );
        assert!(run.points.iter().all(|p| p.throughput > 0.0));
        assert_eq!(run.points[1].state_bytes_per_shard.len(), 2);
        assert!(run.headline_throughput() > 0.0);
        assert!(run.speedup(2).is_some());
        assert!(run.speedup(64).is_none());
        assert!(
            run.snapshot.file_bytes > 0,
            "snapshot bench produced a file"
        );
        assert!(run.snapshot.snapshot_mb_per_s() > 0.0);
        assert!(run.snapshot.resume > Duration::ZERO);
    }

    #[test]
    fn report_round_trips_through_the_extractor() {
        let run = run_scaling(&tiny()).unwrap();
        let text = scaling_report(&run, "smoke", "deadbeef").render();
        assert_eq!(
            extract_number(&text, "headline_throughput_tuples_per_s"),
            Some(run.headline_throughput())
        );
        assert_eq!(extract_number(&text, "schema_version"), Some(1.0));
        assert_eq!(
            extract_number(&text, "total_tuples"),
            Some(tiny().total_tuples() as f64)
        );
        assert_eq!(
            extract_number(&text, "probe_ns_per_tuple"),
            Some(run.probe.probe_ns_per_tuple)
        );
        assert_eq!(
            extract_number(&text, "insert_ns_per_tuple"),
            Some(run.probe.insert_ns_per_tuple)
        );
        assert_eq!(
            extract_number(&text, "probe_batch_ns_per_tuple"),
            Some(run.probe.probe_batch_ns_per_tuple)
        );
        assert_eq!(
            extract_number(&text, "skewed_probe_batch_ns_per_tuple"),
            Some(run.probe_skewed.probe_batch_ns_per_tuple)
        );
        assert!(text.contains("\"batch_sweep\""));
        assert!(text.contains("\"single_core\""));
        assert_eq!(
            extract_number(&text, "skewed_probe_ns_per_tuple"),
            Some(run.probe_skewed.probe_ns_per_tuple)
        );
        assert_eq!(
            extract_number(&text, "candidates_scanned"),
            Some(run.probe.funnel.candidates_scanned as f64)
        );
        assert_eq!(
            extract_number(&text, "skewed_prefix_postings_skipped"),
            Some(run.probe_skewed.funnel.prefix_postings_skipped as f64)
        );
        assert_eq!(
            extract_number(&text, "snapshot_file_bytes"),
            Some(run.snapshot.file_bytes as f64)
        );
        assert_eq!(
            extract_number(&text, "snapshot_mb_per_s"),
            Some(run.snapshot.snapshot_mb_per_s())
        );
        assert!(text.contains("\"snapshot_ms\""));
        assert!(text.contains("\"resume_ms\""));
        assert!(text.contains("\"git_sha\": \"deadbeef\""));
        assert!(text.contains("\"mode\": \"smoke\""));
        assert!(text.contains("state_bytes_per_shard"));
        assert!(text.contains("interner_bytes"));
        assert!(text.contains("postings_slack_bytes"));
        assert!(text.contains("\"funnel\""));
    }

    #[test]
    fn points_report_slack_and_funnel_from_shard_stats() {
        let run = run_scaling(&tiny()).unwrap();
        for point in &run.points {
            // This workload switches, so every point probed through the
            // prefix kernel and its flat postings carry empty-slot slack.
            assert!(point.funnel.candidates_scanned > 0, "funnel populated");
            assert!(point.funnel.candidates_verified > 0);
            assert!(point.postings_slack_bytes > 0, "empty slots accounted");
        }
        assert!(run.probe_skewed.probe_ns_per_tuple > 0.0);
    }

    #[test]
    fn interner_is_accounted_once_not_per_shard() {
        let run = run_scaling(&tiny()).unwrap();
        for point in &run.points {
            assert!(point.interner_bytes > 0, "switched run interns grams");
        }
        // Same workload, same distinct grams: the shared-table size must
        // not grow with the shard count.
        assert_eq!(run.points[0].interner_bytes, run.points[1].interner_bytes);
    }

    #[test]
    fn server_traffic_fields_appear_only_when_the_model_ran() {
        let mut run = run_scaling(&tiny()).unwrap();
        let text = scaling_report(&run, "smoke", "deadbeef").render();
        assert!(
            !text.contains("sessions_per_s"),
            "a sweep without server traffic must not report a zero"
        );
        run.server = Some(ServerBench {
            sessions: 4,
            requests: 100,
            elapsed: Duration::from_secs(2),
            request_p50_ms: 1.5,
            request_p99_ms: 9.0,
            faulty_request_p99_ms: None,
        });
        let text = scaling_report(&run, "smoke", "deadbeef").render();
        assert_eq!(extract_number(&text, "sessions_per_s"), Some(2.0));
        assert_eq!(extract_number(&text, "request_p50_ms"), Some(1.5));
        assert_eq!(extract_number(&text, "request_p99_ms"), Some(9.0));
        assert_eq!(extract_number(&text, "server_sessions"), Some(4.0));
        assert_eq!(extract_number(&text, "server_requests"), Some(100.0));
        assert!(
            !text.contains("faulty_request_p99_ms"),
            "an unmeasured faulty point must be absent, not zero"
        );
        run.server.as_mut().unwrap().faulty_request_p99_ms = Some(12.5);
        let text = scaling_report(&run, "smoke", "deadbeef").render();
        assert_eq!(extract_number(&text, "faulty_request_p99_ms"), Some(12.5));
    }

    #[test]
    fn smoke_and_full_presets_scale_the_same_shape() {
        let smoke = ScalingConfig::smoke();
        let full = ScalingConfig::full();
        assert_eq!(smoke.shard_counts, full.shard_counts);
        assert!(full.parents > smoke.parents);
        assert_eq!(smoke.total_tuples(), 8000);
    }
}
