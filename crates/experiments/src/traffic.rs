//! Mixed-traffic benchmark of the `linkage-server` join service.
//!
//! [`run_server_bench`] starts an in-process [`LinkageServer`], then
//! drives it from several concurrent client threads, each running whole
//! sessions end to end over the TCP line protocol: `OPEN`, batched
//! `FEED`s with interleaved `POLL`s, `FIN`, a poll-drain through
//! `Finished`, `CLOSE`.  Every request is timed individually on the
//! client side, so the result carries both the service-level headline
//! (`sessions_per_s`) and the request-latency distribution
//! (`request_p50_ms` / `request_p99_ms`) that `scripts/bench.sh
//! --server` embeds into the `BENCH_*.json` trajectory and CI gates.
//!
//! The workloads are pre-generated before the clock starts: the bench
//! measures the server — protocol framing, dispatch, session checkout,
//! engine advancement — not `linkage-datagen`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use linkage::api::PipelineConfig;
use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_server::proto::WireEvent;
use linkage_server::{Client, LinkageServer, ServerConfig};
#[cfg(feature = "fault")]
use linkage_server::{RetryClient, RetryPolicy};
use linkage_types::{LinkageError, PerSide, Result, Side, SidedRecord};

/// Configuration of one mixed-traffic run.
///
/// `#[non_exhaustive]`: construct via [`ServerBenchConfig::smoke`],
/// [`ServerBenchConfig::full`] or [`Default`] and adjust the fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerBenchConfig {
    /// Total sessions driven to completion across all clients.
    pub sessions: usize,
    /// Parent-relation size of each session's generated workload.
    pub parents: usize,
    /// Concurrent client threads (each owns one TCP connection and
    /// runs its sessions sequentially).
    pub clients: usize,
    /// Records per `FEED` request.
    pub batch: usize,
    /// Base workload seed; session `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ServerBenchConfig {
    fn default() -> Self {
        Self::smoke()
    }
}

impl ServerBenchConfig {
    /// The CI smoke point: seconds of wall clock.
    pub fn smoke() -> Self {
        Self {
            sessions: 12,
            parents: 120,
            clients: 3,
            batch: 32,
            seed: 900,
        }
    }

    /// The local full point: the same shape, more and larger sessions.
    pub fn full() -> Self {
        Self {
            sessions: 32,
            parents: 400,
            ..Self::smoke()
        }
    }
}

/// The measured result of one mixed-traffic run.
#[derive(Debug, Clone, Copy)]
pub struct ServerBench {
    /// Sessions driven to completion.
    pub sessions: u64,
    /// Individual requests issued (every one timed).
    pub requests: u64,
    /// Wall clock from the first `OPEN` to the last `CLOSE` reply.
    pub elapsed: Duration,
    /// Median request latency, milliseconds.
    pub request_p50_ms: f64,
    /// 99th-percentile request latency (nearest rank), milliseconds.
    pub request_p99_ms: f64,
    /// 99th-percentile *logical-operation* latency of the faulty-mode
    /// point: the same traffic driven through a [`RetryClient`](linkage_server::RetryClient) against
    /// a server injecting a 1% connection drop on every request
    /// (`server.drop.recv`, `Probability { permille: 10 }`).  Each
    /// operation is timed end to end **including** its retries, so the
    /// number is the latency a self-healing caller actually observes
    /// under faults.  `None` unless built with `--features fault`.
    pub faulty_request_p99_ms: Option<f64>,
}

impl ServerBench {
    /// Completed sessions per second — the gated service headline.
    pub fn sessions_per_s(&self) -> f64 {
        self.sessions as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Nearest-rank percentile over an already **sorted** latency list.
fn percentile_ms(sorted: &[f64], pct: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Run one request against the server and append its wall clock to the
/// latency list.
fn timed<T>(
    latencies: &mut Vec<f64>,
    client: &mut Client,
    request: impl FnOnce(&mut Client) -> Result<T>,
) -> Result<T> {
    let start = Instant::now();
    let out = request(client)?;
    latencies.push(start.elapsed().as_secs_f64() * 1e3);
    Ok(out)
}

/// One client thread's work: pull session indices off the shared queue
/// and run each session end to end, timing every request.
fn drive_sessions(
    addr: &str,
    work: &[(PipelineConfig, Vec<SidedRecord>)],
    next: &AtomicUsize,
    batch: usize,
) -> Result<Vec<f64>> {
    let mut client = Client::connect(addr)?;
    let mut latencies = Vec::new();
    loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        let Some((config, sequence)) = work.get(index) else {
            return Ok(latencies);
        };
        let session = timed(&mut latencies, &mut client, |c| c.open(config))?;
        for chunk in sequence.chunks(batch) {
            timed(&mut latencies, &mut client, |c| c.feed(session, chunk))?;
            timed(&mut latencies, &mut client, |c| c.poll(session, 16))?;
        }
        timed(&mut latencies, &mut client, |c| c.finish(session))?;
        let mut finished = false;
        while !finished {
            let events = timed(&mut latencies, &mut client, |c| c.poll(session, 256))?;
            if events.is_empty() {
                return Err(LinkageError::execution(
                    "server bench: finished session stopped yielding events",
                ));
            }
            finished = matches!(events.last(), Some(WireEvent::Finished(_)));
        }
        timed(&mut latencies, &mut client, |c| c.close(session))?;
    }
}

/// Time one operation and append its wall clock to the latency list.
#[cfg(feature = "fault")]
fn clocked<T>(latencies: &mut Vec<f64>, op: impl FnOnce() -> Result<T>) -> Result<T> {
    let start = Instant::now();
    let out = op()?;
    latencies.push(start.elapsed().as_secs_f64() * 1e3);
    Ok(out)
}

/// One retry-client thread's work for the faulty-mode point: the same
/// session loop as [`drive_sessions`], but each step is a *logical*
/// operation through the self-healing [`RetryClient`](linkage_server::RetryClient) — its wall clock
/// includes any reconnects and replays the injected drops force.
#[cfg(feature = "fault")]
fn drive_faulty_sessions(
    addr: &str,
    work: &[(PipelineConfig, Vec<SidedRecord>)],
    next: &AtomicUsize,
    batch: usize,
) -> Result<Vec<f64>> {
    let mut policy = RetryPolicy::default();
    policy.backoff_base = Duration::from_micros(200);
    policy.backoff_max = Duration::from_millis(5);
    let mut client = RetryClient::connect(addr, policy);
    let mut latencies = Vec::new();
    loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        let Some((config, sequence)) = work.get(index) else {
            return Ok(latencies);
        };
        let handle = clocked(&mut latencies, || client.open(config))?;
        for chunk in sequence.chunks(batch) {
            clocked(&mut latencies, || client.feed(handle, chunk))?;
            clocked(&mut latencies, || client.poll(handle, 16))?;
        }
        clocked(&mut latencies, || client.finish(handle))?;
        let mut finished = false;
        while !finished {
            let events = clocked(&mut latencies, || client.poll(handle, 256))?;
            if events.is_empty() {
                return Err(LinkageError::execution(
                    "faulty server bench: finished session stopped yielding events",
                ));
            }
            finished = events.iter().any(|e| matches!(e, WireEvent::Finished(_)));
        }
        clocked(&mut latencies, || client.close(handle))?;
    }
}

/// The faulty-mode point: a fresh server with a 1% per-request
/// connection drop injected, driven by retry clients.  Returns the p99
/// of the logical-operation latencies.
#[cfg(feature = "fault")]
fn run_faulty_point(
    config: &ServerBenchConfig,
    work: &Arc<Vec<(PipelineConfig, Vec<SidedRecord>)>>,
) -> Result<f64> {
    use linkage_types::fault::{self, Trigger};

    let mut server_config = ServerConfig::default();
    server_config.workers = config.clients;
    server_config.max_sessions = config.clients * 2;
    let server = LinkageServer::start(server_config)?;
    let addr = server.addr().to_string();
    fault::arm(
        "server.drop.recv",
        Trigger::Probability {
            permille: 10,
            seed: 0xFA01,
        },
    );

    let next = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::with_capacity(config.clients);
    for _ in 0..config.clients {
        let addr = addr.clone();
        let work = Arc::clone(work);
        let next = Arc::clone(&next);
        let batch = config.batch.max(1);
        handles.push(std::thread::spawn(move || {
            drive_faulty_sessions(&addr, &work, &next, batch)
        }));
    }
    let mut latencies = Vec::new();
    let mut first_err = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(client)) => latencies.extend(client),
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or_else(|| {
                    Some(LinkageError::execution(
                        "faulty server bench: a client thread panicked",
                    ))
                })
            }
        }
    }
    // Disarm before the graceful shutdown so the drop cannot eat it.
    fault::disarm("server.drop.recv");
    server.shutdown()?;
    if let Some(e) = first_err {
        return Err(e);
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(percentile_ms(&latencies, 99))
}

/// Execute the mixed-traffic model and fold every client's request
/// latencies into one distribution.
pub fn run_server_bench(config: &ServerBenchConfig) -> Result<ServerBench> {
    // Pre-generate every session's declaration and feed sequence.
    let mut work = Vec::with_capacity(config.sessions);
    for i in 0..config.sessions {
        let data = generate(&DatagenConfig::mid_stream_dirty(
            config.parents,
            config.seed + i as u64,
        ))?;
        let mut declaration = PipelineConfig::default();
        declaration.keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
        declaration.reference_size = Some(data.parents.len() as u64);
        let sequence: Vec<SidedRecord> = data
            .parents
            .records()
            .iter()
            .map(|r| SidedRecord::new(Side::Left, r.clone()))
            .chain(
                data.children
                    .records()
                    .iter()
                    .map(|r| SidedRecord::new(Side::Right, r.clone())),
            )
            .collect();
        work.push((declaration, sequence));
    }
    let work = Arc::new(work);

    let mut server_config = ServerConfig::default();
    server_config.workers = config.clients;
    // Admission headroom: each client runs one session at a time, so the
    // cap never binds and the bench measures latency, not eviction.
    server_config.max_sessions = config.clients * 2;
    let server = LinkageServer::start(server_config)?;
    let addr = server.addr().to_string();

    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.clients);
    for _ in 0..config.clients {
        let addr = addr.clone();
        let work = Arc::clone(&work);
        let next = Arc::clone(&next);
        let batch = config.batch.max(1);
        handles.push(std::thread::spawn(move || {
            drive_sessions(&addr, &work, &next, batch)
        }));
    }
    let mut latencies = Vec::new();
    for handle in handles {
        let client = handle
            .join()
            .map_err(|_| LinkageError::execution("server bench: a client thread panicked"))?;
        latencies.extend(client?);
    }
    let elapsed = start.elapsed();
    server.shutdown()?;

    #[cfg(feature = "fault")]
    let faulty_request_p99_ms = Some(run_faulty_point(config, &work)?);
    #[cfg(not(feature = "fault"))]
    let faulty_request_p99_ms = None;

    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(ServerBench {
        sessions: work.len() as u64,
        requests: latencies.len() as u64,
        elapsed,
        request_p50_ms: percentile_ms(&latencies, 50),
        request_p99_ms: percentile_ms(&latencies, 99),
        faulty_request_p99_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_traffic_completes_every_session_and_measures_latency() {
        let mut config = ServerBenchConfig::smoke();
        config.sessions = 4;
        config.parents = 60;
        config.clients = 2;
        let bench = run_server_bench(&config).unwrap();
        assert_eq!(bench.sessions, 4);
        // Per session: OPEN + per-chunk FEED/POLL pairs + FIN + ≥1 drain
        // POLL + CLOSE — far more requests than sessions.
        assert!(bench.requests > 4 * 4);
        assert!(bench.sessions_per_s() > 0.0);
        assert!(bench.request_p50_ms > 0.0);
        assert!(bench.request_p99_ms >= bench.request_p50_ms);
    }

    #[test]
    fn percentiles_use_nearest_rank_on_the_sorted_list() {
        let sorted: Vec<f64> = (1..=100).map(|n| n as f64).collect();
        assert_eq!(percentile_ms(&sorted, 50), 50.0);
        assert_eq!(percentile_ms(&sorted, 99), 99.0);
        assert_eq!(percentile_ms(&[], 99), 0.0);
        assert_eq!(percentile_ms(&[7.0], 50), 7.0);
    }
}
